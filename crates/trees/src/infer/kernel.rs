//! Pluggable batch-inference kernels over a [`CompiledForest`].
//!
//! The compiled node arrays admit more than one way to walk a batch, and
//! the winner depends on the machine and the model shape. This module
//! makes the choice explicit: a [`Kernel`] names a strategy, an
//! [`InferenceKernel`] implements it, and every implementation is
//! **bit-identical** to the recursive walk — the kernel knob trades
//! speed, never verdicts.
//!
//! Three families are provided:
//!
//! * **scalar** — the reference walk from PR 2 (sample blocks of 64, or
//!   the per-sample tree-lockstep layout for wide rows). Always safe,
//!   always exact, the baseline every other kernel is measured against.
//! * **blocked** — fixed-width blocks of samples (8 to 64 lanes) descend one tree
//!   in lockstep through a *per-level breadth-first* node layout
//!   (`LevelLayout`). The compare→child-select step over a block is
//!   branchless straight-line code over fixed-size arrays, so the
//!   optimizer can keep the whole block in registers and vectorize the
//!   compares, and a level's nodes are contiguous in memory.
//! * **quantized** — the blocked walk, but comparing against `f32`
//!   thresholds (half the node bytes on the hot path). Exactness is
//!   preserved by a compile-time screen: every threshold `t` is rounded
//!   *down* to the nearest `f32` `q_lo`, and the open interval
//!   `(q_lo, q_hi)` with `q_hi = next_up(q_lo)` (collapsed to a point
//!   when `t` is exactly representable) is the only region where
//!   `value <= q_lo` can disagree with `value <= t`. Lanes whose feature
//!   value ever lands in that one-ULP window are *tainted* and re-walked
//!   with exact `f64` thresholds — bit-identical results guaranteed, not
//!   approximated.
//!
//! [`Kernel::Auto`] (the service default) times a microprobe of every
//! candidate on a prefix of the first real batch and memoizes the winner
//! per compiled forest, so long-lived judges settle onto the fastest
//! kernel for their actual model/hardware combination without any
//! configuration.

use super::{CompiledForest, LEAF_MARKER};
use wdte_data::Label;

/// Block widths the blocked/quantized kernels are compiled for. Narrow
/// blocks vectorize compactly; wide blocks keep more independent gathers
/// in flight, which wins on latency-bound memory systems. The autotuner
/// probes them all.
pub const BLOCK_WIDTHS: [usize; 4] = [8, 16, 32, 64];

/// Block width used when a blocked kernel is requested without autotuning.
pub const DEFAULT_BLOCK_WIDTH: usize = 16;

/// Rows the [`Kernel::Auto`] microprobe times each candidate on.
const PROBE_ROWS: usize = 128;

/// Timing repetitions per candidate in the autotune microprobe; the best
/// (minimum) of the repetitions is scored, which discards warm-up noise.
const PROBE_REPS: usize = 2;

/// Batch-inference strategy selector, as requested by callers (CLI flags,
/// the service builder, bench fixtures).
///
/// Every kernel returns bit-identical predictions; the choice only moves
/// throughput. `Auto` defers to a first-batch microprobe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// The reference scalar walk (PR 2 behaviour).
    Scalar,
    /// Fixed-width sample blocks over the per-level layout.
    Blocked,
    /// Blocked walk over `f32` thresholds with the exactness screen.
    Quantized,
    /// Time all candidates on the first batch and memoize the winner.
    #[default]
    Auto,
}

impl Kernel {
    /// All selectable kernels, in the order the autotuner probes them.
    pub const ALL: [Kernel; 4] = [Kernel::Scalar, Kernel::Blocked, Kernel::Quantized, Kernel::Auto];
}

impl std::str::FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Kernel::Scalar),
            "blocked" => Ok(Kernel::Blocked),
            "quantized" => Ok(Kernel::Quantized),
            "auto" => Ok(Kernel::Auto),
            other => Err(format!(
                "unknown kernel `{other}` (expected scalar, blocked, quantized or auto)"
            )),
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Kernel::Scalar => "scalar",
            Kernel::Blocked => "blocked",
            Kernel::Quantized => "quantized",
            Kernel::Auto => "auto",
        })
    }
}

/// A concrete kernel choice after `Auto` resolution: the strategy plus the
/// block width it runs at. This is what autotuning memoizes and what
/// diagnostics (`scaling_smoke`, the service) report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedKernel {
    /// The reference scalar walk.
    Scalar,
    /// Blocked walk at the given width (one of [`BLOCK_WIDTHS`]).
    Blocked {
        /// Samples per lockstep block.
        width: usize,
    },
    /// Quantized blocked walk at the given width (one of [`BLOCK_WIDTHS`]).
    Quantized {
        /// Samples per lockstep block.
        width: usize,
    },
}

impl ResolvedKernel {
    /// Samples walked together per block (1 for the scalar kernel's
    /// conceptual lane — its internal blocking is an implementation
    /// detail, not a lockstep width).
    pub fn block_width(&self) -> usize {
        match self {
            ResolvedKernel::Scalar => 1,
            ResolvedKernel::Blocked { width } | ResolvedKernel::Quantized { width } => *width,
        }
    }

    /// The strategy family without the width.
    pub fn family(&self) -> Kernel {
        match self {
            ResolvedKernel::Scalar => Kernel::Scalar,
            ResolvedKernel::Blocked { .. } => Kernel::Blocked,
            ResolvedKernel::Quantized { .. } => Kernel::Quantized,
        }
    }

    /// The static implementation behind this choice. Widths other than
    /// those in [`BLOCK_WIDTHS`] fall back to the nearest compiled width.
    pub(super) fn implementation(&self) -> &'static dyn InferenceKernel {
        match self {
            ResolvedKernel::Scalar => &ScalarKernel,
            ResolvedKernel::Blocked { width } if *width <= 8 => &BLOCKED_8,
            ResolvedKernel::Blocked { width } if *width <= 16 => &BLOCKED_16,
            ResolvedKernel::Blocked { width } if *width <= 32 => &BLOCKED_32,
            ResolvedKernel::Blocked { .. } => &BLOCKED_64,
            ResolvedKernel::Quantized { width } if *width <= 8 => &QUANTIZED_8,
            ResolvedKernel::Quantized { width } if *width <= 16 => &QUANTIZED_16,
            ResolvedKernel::Quantized { width } if *width <= 32 => &QUANTIZED_32,
            ResolvedKernel::Quantized { .. } => &QUANTIZED_64,
        }
    }
}

impl std::fmt::Display for ResolvedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolvedKernel::Scalar => f.write_str("scalar"),
            ResolvedKernel::Blocked { width } => write!(f, "blocked{width}"),
            ResolvedKernel::Quantized { width } => write!(f, "quantized{width}"),
        }
    }
}

/// One batch-inference strategy. Implementations must produce results
/// bit-identical to the recursive walk for every input, including `NaN`
/// and `±inf` feature values.
pub trait InferenceKernel: Send + Sync {
    /// Short stable name for logs and bench rows.
    fn name(&self) -> &'static str;

    /// Fills `labels` (sample-major, `samples × num_trees`) with every
    /// tree's vote for every row of the batch.
    fn predict_all_rows(
        &self,
        forest: &CompiledForest,
        values: &[f64],
        cols: usize,
        samples: usize,
        labels: &mut [Label],
    );

    /// Adds each row's per-class vote counts into `votes` (sample-major,
    /// `forest.num_classes()` slots per sample; callers pass zeroed
    /// buffers).
    fn vote_rows(
        &self,
        forest: &CompiledForest,
        values: &[f64],
        cols: usize,
        samples: usize,
        votes: &mut [u32],
    );
}

/// The reference kernel: delegates to the scalar walks on
/// [`CompiledForest`] (sample blocks of 64, or tree-lockstep for wide
/// rows).
pub(super) struct ScalarKernel;

impl InferenceKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn predict_all_rows(
        &self,
        forest: &CompiledForest,
        values: &[f64],
        cols: usize,
        samples: usize,
        labels: &mut [Label],
    ) {
        forest.scalar_predict_all_rows(values, cols, samples, labels);
    }

    fn vote_rows(
        &self,
        forest: &CompiledForest,
        values: &[f64],
        cols: usize,
        samples: usize,
        votes: &mut [u32],
    ) {
        forest.scalar_vote_rows(values, cols, samples, votes);
    }
}

/// Per-level breadth-first node layout driving the blocked and quantized
/// kernels.
///
/// Each tree's nodes are renumbered in BFS order, so one lockstep step of
/// a sample block reads from a contiguous slab of one level. Leaves are
/// self loops on both children (mirroring [`super::HotNode`]); their
/// label lives in a separate `leaf_label` array rather than overloading
/// the feature slot, so the gather index of a finished lane stays a valid
/// feature. Alongside each exact `f64` threshold the layout stores the
/// quantized pair `q_lo = round_down_f32(t)` and
/// `q_hi = next_up(q_lo)` (collapsed to `q_lo` when `t` is exactly
/// representable): the open window `(q_lo, q_hi)` is precisely where the
/// `f32` compare can disagree with the `f64` one.
#[derive(Debug, Clone, Default)]
pub(super) struct LevelLayout {
    /// Packed exact-walk nodes (24 bytes each), BFS-ordered per tree —
    /// the blocked kernel's hot stream and the quantized fallback's
    /// exact reference. One struct per node keeps each visit to a single
    /// cache-line stream (split arrays touch three lines per node).
    walk: Vec<WalkNode>,
    /// Packed quantized nodes (20 bytes each), same BFS order — the
    /// quantized kernel's hot stream carries only the `f32` window, so
    /// it moves fewer node bytes per level than the exact walk.
    quant: Vec<QuantNode>,
    /// Class index of each leaf (0 for internal nodes); only read once a
    /// lane's walk has finished, so it stays out of the hot node bytes.
    leaf_label: Vec<u32>,
    /// BFS root index of each tree.
    roots: Vec<u32>,
}

/// One exact node of the per-level layout.
#[derive(Debug, Clone, Copy)]
struct WalkNode {
    /// Exact split threshold (`NaN` for leaves, so `value <= t` is false
    /// and the self loop is taken through `kids[0]`).
    threshold: f64,
    /// Feature tested (0 for leaves; never gathered out-of-bounds because
    /// leaves keep descending via their self loop).
    feature: u32,
    /// `kids[usize::from(value <= t)]`: index 0 is the right child (the
    /// branch `NaN` takes), index 1 the left. Leaves self-loop on both.
    kids: [u32; 2],
}

/// One quantized node: the `f32` window standing in for the threshold.
#[derive(Debug, Clone, Copy)]
struct QuantNode {
    /// Largest `f32` not above the exact threshold (`NaN` for leaves).
    q_lo: f32,
    /// `next_up(q_lo)` when rounding was inexact, else `q_lo`.
    q_hi: f32,
    /// Feature tested (0 for leaves), as in [`WalkNode`].
    feature: u32,
    /// Child pair, as in [`WalkNode`].
    kids: [u32; 2],
}

/// Largest `f32` whose value does not exceed `t` (`NaN` stays `NaN`;
/// values beyond `f32` range round toward zero-side neighbours of `±inf`
/// as dictated by the cast, then step down if the cast rounded up).
fn round_down_to_f32(t: f64) -> f32 {
    let cast = t as f32;
    if f64::from(cast) > t {
        cast.next_down()
    } else {
        cast
    }
}

impl LevelLayout {
    /// Builds the layout from the canonical SoA arrays.
    pub(super) fn build(
        feature: &[u32],
        threshold: &[f64],
        left: &[u32],
        right: &[u32],
        tree_starts: &[u32],
    ) -> Self {
        let nodes = feature.len();
        let mut layout = LevelLayout {
            walk: Vec::with_capacity(nodes),
            quant: Vec::with_capacity(nodes),
            leaf_label: Vec::with_capacity(nodes),
            roots: Vec::with_capacity(tree_starts.len().saturating_sub(1)),
        };
        // Old node index → BFS index, valid per tree as it is built.
        let mut remap = vec![0u32; nodes];
        let mut order: Vec<usize> = Vec::new();
        for window in tree_starts.windows(2) {
            let root = window[0] as usize;
            let base = layout.walk.len();
            layout.roots.push(base as u32);
            order.clear();
            order.push(root);
            let mut head = 0;
            while head < order.len() {
                let node = order[head];
                head += 1;
                if feature[node] != LEAF_MARKER {
                    order.push(left[node] as usize);
                    order.push(right[node] as usize);
                }
            }
            for (offset, &old) in order.iter().enumerate() {
                remap[old] = (base + offset) as u32;
            }
            for &old in &order {
                let new = remap[old];
                if feature[old] == LEAF_MARKER {
                    layout.walk.push(WalkNode {
                        threshold: f64::NAN,
                        feature: 0,
                        kids: [new, new],
                    });
                    layout.quant.push(QuantNode {
                        q_lo: f32::NAN,
                        q_hi: f32::NAN,
                        feature: 0,
                        kids: [new, new],
                    });
                    layout.leaf_label.push(left[old]);
                } else {
                    let t = threshold[old];
                    let lo = round_down_to_f32(t);
                    let hi = if f64::from(lo) == t { lo } else { lo.next_up() };
                    let kids = [remap[right[old] as usize], remap[left[old] as usize]];
                    layout.walk.push(WalkNode {
                        threshold: t,
                        feature: feature[old],
                        kids,
                    });
                    layout.quant.push(QuantNode {
                        q_lo: lo,
                        q_hi: hi,
                        feature: feature[old],
                        kids,
                    });
                    layout.leaf_label.push(0);
                }
            }
        }
        layout
    }

    /// Exact `f64` re-walk of one row through one tree — the fallback for
    /// lanes the quantized screen tainted.
    fn exact_label(&self, root: u32, depth: u32, row: &[f64]) -> u32 {
        let mut state = root as usize;
        for _ in 0..depth {
            let node = &self.walk[state];
            let value = row[node.feature as usize];
            state = node.kids[usize::from(value <= node.threshold)] as usize;
        }
        self.leaf_label[state]
    }
}

/// Advances `lanes` samples through one tree in lockstep over the level
/// layout. With `QUANT`, compares run against the `f32` `q_lo` thresholds
/// and `taint` records lanes whose value fell inside a node's one-ULP
/// disagreement window `(q_lo, q_hi)`; those lanes need the exact
/// fallback. Fixed-width callers pass `&mut [u32; W]` slices so the loops
/// unroll to straight-line branchless code.
#[inline(always)]
fn descend<const QUANT: bool>(
    level: &LevelLayout,
    root: u32,
    depth: u32,
    rows: &[f64],
    cols: usize,
    states: &mut [u32],
    taint: &mut [bool],
) {
    for state in states.iter_mut() {
        *state = root;
    }
    if QUANT {
        let nodes = level.quant.as_slice();
        for lane_taint in taint.iter_mut() {
            *lane_taint = false;
        }
        for _ in 0..depth {
            for (lane, state) in states.iter_mut().enumerate() {
                let node = nodes[*state as usize];
                let value = rows[lane * cols + node.feature as usize];
                let lo = f64::from(node.q_lo);
                let hi = f64::from(node.q_hi);
                // Non-short-circuiting `&` keeps the window test branchless;
                // NaN values and NaN leaf sentinels both compare false.
                taint[lane] |= (value > lo) & (value < hi);
                *state = if value <= lo { node.kids[1] } else { node.kids[0] };
            }
        }
    } else {
        let nodes = level.walk.as_slice();
        for _ in 0..depth {
            for (lane, state) in states.iter_mut().enumerate() {
                let node = nodes[*state as usize];
                let value = rows[lane * cols + node.feature as usize];
                // NaN compares false, taking `kids[0]`: into the right
                // child of an internal node or around a leaf's self loop.
                *state = if value <= node.threshold {
                    node.kids[1]
                } else {
                    node.kids[0]
                };
            }
        }
    }
}

/// The blocked/quantized batch walk: whole blocks of `W` samples descend
/// each tree in lockstep, the tail block runs the same code at its actual
/// length, and (with `QUANT`) tainted lanes are re-walked exactly before
/// their label is emitted via `sink(sample, tree, label)`.
fn run_blocked<const W: usize, const QUANT: bool, F: FnMut(usize, usize, u32)>(
    forest: &CompiledForest,
    values: &[f64],
    cols: usize,
    samples: usize,
    mut sink: F,
) {
    let level = &forest.level;
    let num_trees = forest.num_trees();
    let mut states = [0u32; W];
    let mut taint = [false; W];
    let mut block_start = 0;
    while block_start < samples {
        let lanes = W.min(samples - block_start);
        let rows = &values[block_start * cols..(block_start + lanes) * cols];
        for tree in 0..num_trees {
            let root = level.roots[tree];
            let depth = forest.depths[tree];
            if lanes == W {
                // Full block: fixed-length slices unroll and vectorize.
                descend::<QUANT>(level, root, depth, rows, cols, &mut states, &mut taint);
            } else {
                descend::<QUANT>(
                    level,
                    root,
                    depth,
                    rows,
                    cols,
                    &mut states[..lanes],
                    &mut taint[..lanes],
                );
            }
            for lane in 0..lanes {
                let label = if QUANT && taint[lane] {
                    level.exact_label(root, depth, &rows[lane * cols..(lane + 1) * cols])
                } else {
                    level.leaf_label[states[lane] as usize]
                };
                sink(block_start + lane, tree, label);
            }
        }
        block_start += lanes;
    }
}

/// Blocked kernel at compile-time width `W`.
pub(super) struct BlockedKernel<const W: usize>;

/// Quantized kernel at compile-time width `W`.
pub(super) struct QuantizedKernel<const W: usize>;

pub(super) static BLOCKED_8: BlockedKernel<8> = BlockedKernel;
pub(super) static BLOCKED_16: BlockedKernel<16> = BlockedKernel;
pub(super) static BLOCKED_32: BlockedKernel<32> = BlockedKernel;
pub(super) static BLOCKED_64: BlockedKernel<64> = BlockedKernel;
pub(super) static QUANTIZED_8: QuantizedKernel<8> = QuantizedKernel;
pub(super) static QUANTIZED_16: QuantizedKernel<16> = QuantizedKernel;
pub(super) static QUANTIZED_32: QuantizedKernel<32> = QuantizedKernel;
pub(super) static QUANTIZED_64: QuantizedKernel<64> = QuantizedKernel;

impl<const W: usize> InferenceKernel for BlockedKernel<W> {
    fn name(&self) -> &'static str {
        match W {
            8 => "blocked8",
            16 => "blocked16",
            32 => "blocked32",
            _ => "blocked64",
        }
    }

    fn predict_all_rows(
        &self,
        forest: &CompiledForest,
        values: &[f64],
        cols: usize,
        samples: usize,
        labels: &mut [Label],
    ) {
        let num_trees = forest.num_trees();
        run_blocked::<W, false, _>(forest, values, cols, samples, |sample, tree, label| {
            labels[sample * num_trees + tree] =
                Label::from_index(label as usize).expect("validated leaf class");
        });
    }

    fn vote_rows(
        &self,
        forest: &CompiledForest,
        values: &[f64],
        cols: usize,
        samples: usize,
        votes: &mut [u32],
    ) {
        let classes = forest.num_classes().max(2);
        run_blocked::<W, false, _>(forest, values, cols, samples, |sample, _, label| {
            votes[sample * classes + label as usize] += 1;
        });
    }
}

impl<const W: usize> InferenceKernel for QuantizedKernel<W> {
    fn name(&self) -> &'static str {
        match W {
            8 => "quantized8",
            16 => "quantized16",
            32 => "quantized32",
            _ => "quantized64",
        }
    }

    fn predict_all_rows(
        &self,
        forest: &CompiledForest,
        values: &[f64],
        cols: usize,
        samples: usize,
        labels: &mut [Label],
    ) {
        let num_trees = forest.num_trees();
        run_blocked::<W, true, _>(forest, values, cols, samples, |sample, tree, label| {
            labels[sample * num_trees + tree] =
                Label::from_index(label as usize).expect("validated leaf class");
        });
    }

    fn vote_rows(
        &self,
        forest: &CompiledForest,
        values: &[f64],
        cols: usize,
        samples: usize,
        votes: &mut [u32],
    ) {
        let classes = forest.num_classes().max(2);
        run_blocked::<W, true, _>(forest, values, cols, samples, |sample, _, label| {
            votes[sample * classes + label as usize] += 1;
        });
    }
}

/// Times every candidate kernel on a prefix of the first real batch and
/// returns the fastest. Ties keep the earlier candidate, so the probe is
/// deterministic up to timer noise; the scalar reference is probed first
/// and therefore wins exact ties.
pub(super) fn autotune(
    forest: &CompiledForest,
    values: &[f64],
    cols: usize,
    samples: usize,
) -> ResolvedKernel {
    let probe_rows = samples.min(PROBE_ROWS);
    let probe = &values[..probe_rows * cols];
    let mut candidates = [ResolvedKernel::Scalar; 1 + 2 * BLOCK_WIDTHS.len()];
    for (i, &width) in BLOCK_WIDTHS.iter().enumerate() {
        candidates[1 + 2 * i] = ResolvedKernel::Blocked { width };
        candidates[2 + 2 * i] = ResolvedKernel::Quantized { width };
    }
    let mut votes = vec![0u32; probe_rows * forest.num_classes().max(2)];
    let mut best = candidates[0];
    let mut best_ns = u128::MAX;
    for candidate in candidates {
        let implementation = candidate.implementation();
        let mut candidate_ns = u128::MAX;
        for _ in 0..PROBE_REPS {
            votes.iter_mut().for_each(|v| *v = 0);
            let start = std::time::Instant::now();
            implementation.vote_rows(forest, probe, cols, probe_rows, &mut votes);
            candidate_ns = candidate_ns.min(start.elapsed().as_nanos());
        }
        if candidate_ns < best_ns {
            best_ns = candidate_ns;
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_down_to_f32_is_the_largest_f32_at_most_t() {
        for t in [
            0.5,
            -0.5,
            0.1,
            -0.1,
            1.0 + f64::EPSILON,
            1e300,
            -1e300,
            1e-300,
            -1e-300,
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from(f32::MAX) * 2.0,
        ] {
            let lo = round_down_to_f32(t);
            assert!(f64::from(lo) <= t, "round_down({t}) = {lo} overshoots");
            // Maximality: the next f32 up must overshoot (vacuous at +inf,
            // where next_up saturates and lo == t already).
            assert!(
                lo == f32::INFINITY || f64::from(lo.next_up()) > t,
                "round_down({t}) = {lo} is not the largest candidate"
            );
        }
        assert!(round_down_to_f32(f64::NAN).is_nan());
    }

    #[test]
    fn quantized_window_is_exactly_the_disagreement_region() {
        // For thresholds both representable and not, `value <= q_lo` must
        // agree with `value <= t` for every value outside (q_lo, q_hi).
        for t in [0.5, 0.1, -0.1, 1.0 + f64::EPSILON, 1e-40, -1e-40] {
            let lo = round_down_to_f32(t);
            let hi = if f64::from(lo) == t { lo } else { lo.next_up() };
            for value in [
                f64::from(lo),
                f64::from(hi),
                t,
                t - 1.0,
                t + 1.0,
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::NAN,
            ] {
                let in_window = value > f64::from(lo) && value < f64::from(hi);
                if !in_window {
                    assert_eq!(
                        value <= f64::from(lo),
                        value <= t,
                        "t={t} lo={lo} hi={hi} value={value}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_names_parse_and_render() {
        for kernel in Kernel::ALL {
            assert_eq!(kernel.to_string().parse::<Kernel>(), Ok(kernel));
        }
        assert!("warp".parse::<Kernel>().is_err());
        assert_eq!(ResolvedKernel::Blocked { width: 16 }.to_string(), "blocked16");
        assert_eq!(ResolvedKernel::Quantized { width: 8 }.block_width(), 8);
        assert_eq!(ResolvedKernel::Scalar.block_width(), 1);
    }
}
