//! Compiled batch inference: pointer-free, cache-friendly forest evaluation.
//!
//! Training produces [`crate::DecisionTree`]s stored as arenas of `enum`
//! nodes — convenient to grow, but slow to evaluate at scale: every node
//! visit pattern-matches a 40-byte enum scattered across a `Vec`, and every
//! prediction walks the trees one sample at a time. Verification, the
//! detection scan and the suppression/forgery attacks all replay entire
//! trigger and test sets through the model, so deployment-side throughput
//! is dominated by these walks.
//!
//! [`CompiledForest`] flattens a trained [`RandomForest`] into
//! structure-of-arrays node storage:
//!
//! ```text
//!             ┌────────── one entry per node, all trees concatenated ─────────┐
//! feature:    [ f0 f1 LEAF f3 LEAF LEAF | f0 LEAF f2 LEAF LEAF | ... ]  u32
//! threshold:  [ t0 t1  .   t3  .    .   | t0  .   t2  .    .   | ... ]  f64
//! left:       [ l0 l1 lbl  l3 lbl  lbl  | l0 lbl  l2 lbl  lbl  | ... ]  u32
//! right:      [ r0 r1  0   r3  0    0   | r0  0   r2  0    0   | ... ]  u32
//!             └── tree 0 ───────────────┴── tree 1 ────────────┴─ ...
//! tree_starts: [0, 6, 11, ...]          (root index per tree + total)
//! ```
//!
//! A leaf is marked by `feature == LEAF_MARKER` and stores its predicted
//! label's class index in `left`. Trees are laid out in depth-first
//! preorder with the left subtree adjacent to its parent, so the common
//! `x[f] <= t` branch continues on the next node. Batch prediction walks
//! all trees over fixed-size sample blocks, keeping one tree's nodes and
//! one block of rows hot in cache.
//!
//! Traversal semantics are bit-identical to [`DecisionTree::predict`]:
//! the test is `x[feature] <= threshold`, so `NaN` features compare false
//! and deterministically descend into the right child.

use crate::forest::RandomForest;
use crate::tree::{DecisionTree, Node, TreeStats};
use serde::{DeError, Deserialize, Serialize, Value};
use std::sync::OnceLock;
use wdte_data::{Dataset, DenseMatrix, Label};

pub mod kernel;

use kernel::LevelLayout;
pub use kernel::{InferenceKernel, Kernel, ResolvedKernel, DEFAULT_BLOCK_WIDTH};

/// Sentinel in the `feature` array marking a leaf node.
pub const LEAF_MARKER: u32 = u32::MAX;

/// Number of samples walked together per tree during batch prediction;
/// sized so a block of rows plus one tree's node arrays fit in L1/L2.
pub const BLOCK_SIZE: usize = 64;

/// Column count from which batch prediction considers the per-sample
/// tree-lockstep walk: a block of wide (image) rows no longer fits in
/// cache, so keeping one row hot in L1 while every tree advances wins over
/// blocking samples.
pub const WIDE_ROW_THRESHOLD: usize = 256;

/// Minimum ensemble depth (deepest tree) for the tree-lockstep walk: on
/// very shallow ensembles its lockstep lanes drain after a handful of
/// steps, leaving a serial tail, while sample blocks keep all lanes busy
/// for every tree.
pub const DEEP_ENSEMBLE_DEPTH: usize = 12;

/// A trained forest flattened into contiguous structure-of-arrays node
/// storage for fast batch inference (see the module documentation for the
/// exact layout).
///
/// Compiled forests are immutable snapshots: compile once after training
/// (or after loading a model from disk) and reuse for every prediction,
/// verification and attack-scoring pass.
#[derive(Debug, Clone)]
pub struct CompiledForest {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    tree_starts: Vec<u32>,
    num_features: usize,
    /// Number of classes `k` of the label space; leaf class indices are
    /// validated to stay below it.
    num_classes: usize,
    /// Branchless traversal table derived from the SoA arrays (see
    /// [`HotNode`]); never serialized.
    hot: Vec<HotNode>,
    /// Maximum depth of each tree; the number of lockstep steps the batch
    /// walk performs. Derived, never serialized.
    depths: Vec<u32>,
    /// Tree indices sorted by descending depth; the lane order of the
    /// per-sample tree-lockstep walk. Derived, never serialized.
    depth_order: Vec<u32>,
    /// `active_counts[s]` = number of trees deeper than `s` — the prefix of
    /// `depth_order` still walking at step `s`. Derived, never serialized.
    active_counts: Vec<u32>,
    /// Per-level breadth-first node layout driving the blocked and
    /// quantized kernels (see [`kernel`]). Derived, never serialized.
    level: LevelLayout,
    /// Kernel choice memoized by [`Kernel::Auto`]'s first-batch
    /// microprobe. Derived (and machine-local), never serialized.
    auto: OnceLock<ResolvedKernel>,
}

/// Equality compares only the canonical SoA arrays; the derived traversal
/// tables are a pure function of them (and contain `NaN` leaf sentinels
/// that would defeat a field-wise float comparison).
impl PartialEq for CompiledForest {
    fn eq(&self, other: &Self) -> bool {
        self.feature == other.feature
            && self.threshold == other.threshold
            && self.left == other.left
            && self.right == other.right
            && self.tree_starts == other.tree_starts
            && self.num_features == other.num_features
            && self.num_classes == other.num_classes
    }
}

/// One node packed into a single 24-byte record for the batch walk.
///
/// The SoA arrays are the canonical (and serialized) representation; this
/// derived table re-encodes leaves as *self loops*: a leaf stores
/// `threshold = NaN` (so `value <= threshold` is always false), its own
/// index in `right` (the branch NaN takes) and its label's class index in
/// `left`. Every sample can then advance exactly `depth(tree)` steps with
/// no leaf test at all — finished samples spin on their leaf — which
/// removes the one unpredictable branch from the inner loop and lets a
/// whole block of independent walks overlap in the memory pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HotNode {
    threshold: f64,
    feature: u32,
    left: u32,
    right: u32,
}

fn build_hot(feature: &[u32], threshold: &[f64], left: &[u32], right: &[u32]) -> Vec<HotNode> {
    (0..feature.len())
        .map(|n| {
            if feature[n] == LEAF_MARKER {
                HotNode {
                    threshold: f64::NAN,
                    feature: 0,
                    left: left[n],
                    right: n as u32,
                }
            } else {
                HotNode {
                    threshold: threshold[n],
                    feature: feature[n],
                    left: left[n],
                    right: right[n],
                }
            }
        })
        .collect()
}

/// Builds the schedule of the per-sample tree-lockstep walk: the trees
/// sorted by descending depth, and for every step the count of trees still
/// active (a prefix of that order). Walking only the active prefix keeps
/// total lane-steps at `sum(depths)` instead of `max_depth × num_trees`.
fn build_schedule(depths: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut depth_order: Vec<u32> = (0..depths.len() as u32).collect();
    depth_order.sort_by_key(|&tree| std::cmp::Reverse(depths[tree as usize]));
    let max_depth = depths.iter().copied().max().unwrap_or(0);
    let active_counts: Vec<u32> = (0..max_depth)
        .map(|step| depth_order.iter().take_while(|&&tree| depths[tree as usize] > step).count() as u32)
        .collect();
    (depth_order, active_counts)
}

/// Maximum depth of every tree, computed from the SoA arrays.
fn build_depths(feature: &[u32], left: &[u32], right: &[u32], tree_starts: &[u32]) -> Vec<u32> {
    (0..tree_starts.len().saturating_sub(1))
        .map(|tree| {
            let lo = tree_starts[tree] as usize;
            let mut depth = 0u32;
            let mut stack = vec![(lo, 0u32)];
            while let Some((node, node_depth)) = stack.pop() {
                if feature[node] == LEAF_MARKER {
                    depth = depth.max(node_depth);
                } else {
                    stack.push((left[node] as usize, node_depth + 1));
                    stack.push((right[node] as usize, node_depth + 1));
                }
            }
            depth
        })
        .collect()
}

/// Index of the class with the most votes; ties go to the lowest class
/// index, which for binary labels reproduces the paper's tie-to-negative
/// majority rule (`positive` wins iff `2 * positive > m`).
fn argmax_class(counts: &[u32]) -> usize {
    let mut winner = 0usize;
    for (class, &count) in counts.iter().enumerate().skip(1) {
        if count > counts[winner] {
            winner = class;
        }
    }
    winner
}

/// Per-tree predictions for a batch of samples, stored sample-major (the
/// votes of one sample are contiguous).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPredictions {
    labels: Vec<Label>,
    num_trees: usize,
    num_classes: usize,
}

impl BatchPredictions {
    /// Number of samples in the batch.
    pub fn num_samples(&self) -> usize {
        self.labels.len().checked_div(self.num_trees).unwrap_or(0)
    }

    /// Number of trees that voted.
    pub fn num_trees(&self) -> usize {
        self.num_trees
    }

    /// Number of classes `k` of the forest that produced these votes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Per-tree votes of one sample, in tree order.
    ///
    /// # Panics
    /// Panics if `sample >= num_samples()`.
    pub fn sample(&self, sample: usize) -> &[Label] {
        &self.labels[sample * self.num_trees..(sample + 1) * self.num_trees]
    }

    /// Number of trees voting [`Label::Positive`] for one sample (the
    /// one-vs-rest view of class 1 for `k > 2`).
    pub fn positive_votes(&self, sample: usize) -> usize {
        self.sample(sample).iter().filter(|&&l| l == Label::Positive).count()
    }

    /// Number of trees voting each class for one sample, indexed by class.
    pub fn class_votes(&self, sample: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes.max(2)];
        for label in self.sample(sample) {
            counts[label.index()] += 1;
        }
        counts
    }

    /// Plurality vote of one sample (ties go to the lowest class index,
    /// which for binary labels is the negative class, matching
    /// [`RandomForest::predict`]).
    pub fn majority(&self, sample: usize) -> Label {
        let counts = self.class_votes(sample);
        let mut winner = 0usize;
        for (class, &count) in counts.iter().enumerate().skip(1) {
            if count > counts[winner] {
                winner = class;
            }
        }
        Label::from_index(winner).expect("class index fits u16")
    }

    /// Iterator over per-sample vote slices.
    pub fn iter(&self) -> impl Iterator<Item = &[Label]> {
        self.labels.chunks_exact(self.num_trees.max(1)).take(self.num_samples())
    }
}

impl CompiledForest {
    /// Flattens a trained forest into the compiled representation.
    pub fn compile(forest: &RandomForest) -> Self {
        let total_nodes: usize = forest.trees().iter().map(|t| t.nodes().len()).sum();
        let mut compiled = CompiledForest {
            feature: Vec::with_capacity(total_nodes),
            threshold: Vec::with_capacity(total_nodes),
            left: Vec::with_capacity(total_nodes),
            right: Vec::with_capacity(total_nodes),
            tree_starts: Vec::with_capacity(forest.num_trees() + 1),
            num_features: forest.num_features(),
            num_classes: forest.num_classes(),
            hot: Vec::new(),
            depths: Vec::new(),
            depth_order: Vec::new(),
            active_counts: Vec::new(),
            level: LevelLayout::default(),
            auto: OnceLock::new(),
        };
        for tree in forest.trees() {
            compiled.tree_starts.push(compiled.feature.len() as u32);
            compiled.emit(tree, tree.root());
        }
        compiled.tree_starts.push(compiled.feature.len() as u32);
        compiled.hot = build_hot(
            &compiled.feature,
            &compiled.threshold,
            &compiled.left,
            &compiled.right,
        );
        compiled.depths = build_depths(
            &compiled.feature,
            &compiled.left,
            &compiled.right,
            &compiled.tree_starts,
        );
        let (depth_order, active_counts) = build_schedule(&compiled.depths);
        compiled.depth_order = depth_order;
        compiled.active_counts = active_counts;
        compiled.level = LevelLayout::build(
            &compiled.feature,
            &compiled.threshold,
            &compiled.left,
            &compiled.right,
            &compiled.tree_starts,
        );
        compiled
    }

    /// Emits the subtree rooted at arena index `node` in preorder (left
    /// subtree adjacent to its parent) and returns the compiled index.
    fn emit(&mut self, tree: &DecisionTree, node: usize) -> u32 {
        let slot = self.feature.len();
        self.feature.push(LEAF_MARKER);
        self.threshold.push(0.0);
        self.left.push(0);
        self.right.push(0);
        match &tree.nodes()[node] {
            Node::Leaf { label, .. } => {
                self.left[slot] = label.index() as u32;
            }
            Node::Internal {
                feature,
                threshold,
                left,
                right,
            } => {
                let left_slot = self.emit(tree, *left);
                let right_slot = self.emit(tree, *right);
                self.feature[slot] = *feature as u32;
                self.threshold[slot] = *threshold;
                self.left[slot] = left_slot;
                self.right[slot] = right_slot;
            }
        }
        slot as u32
    }

    /// Number of trees `m` in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.tree_starts.len().saturating_sub(1)
    }

    /// Number of features of the training space.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes `k` of the label space.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total number of nodes across all trees.
    pub fn total_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Node index range `[lo, hi)` of one tree; `lo` is its root.
    fn segment(&self, tree: usize) -> (usize, usize) {
        (
            self.tree_starts[tree] as usize,
            self.tree_starts[tree + 1] as usize,
        )
    }

    /// Walks one tree for one instance (the protocol-scale single-query
    /// path; batches go through the lockstep walk instead).
    #[inline]
    fn walk(&self, root: usize, instance: &[f64]) -> Label {
        let mut node = root;
        loop {
            let feature = self.feature[node];
            if feature == LEAF_MARKER {
                return Label::from_index(self.left[node] as usize)
                    .expect("leaf class indices are validated to fit the label space");
            }
            node = if instance[feature as usize] <= self.threshold[node] {
                self.left[node] as usize
            } else {
                self.right[node] as usize
            };
        }
    }

    /// Advances every sample of `block` through one tree in lockstep and
    /// returns each sample's final leaf via `sink(block_offset, leaf)`.
    ///
    /// `states[i]` must enter holding the tree's root index for every lane;
    /// after `depth` steps every lane provably sits on a leaf (leaves spin
    /// on themselves), so the inner loop needs no leaf test.
    #[inline]
    fn lockstep_block(
        &self,
        tree: usize,
        values: &[f64],
        cols: usize,
        block: std::ops::Range<usize>,
        states: &mut [u32],
        mut sink: impl FnMut(usize, u32),
    ) {
        let root = self.tree_starts[tree];
        let depth = self.depths[tree];
        let lanes = block.len();
        let nodes = self.hot.as_slice();
        let rows = &values[block.start * cols..block.end * cols];
        for state in states[..lanes].iter_mut() {
            *state = root;
        }
        for _ in 0..depth {
            for (lane, state) in states[..lanes].iter_mut().enumerate() {
                let node = nodes[*state as usize];
                let value = rows[lane * cols + node.feature as usize];
                // NaN compares false, taking `right`: into the right child
                // of an internal node (the recursive semantics) or back to
                // the same leaf (the self loop).
                *state = if value <= node.threshold {
                    node.left
                } else {
                    node.right
                };
            }
        }
        for (lane, state) in states[..lanes].iter().enumerate() {
            sink(lane, nodes[*state as usize].left);
        }
    }

    /// Picks the batch-walk layout for a matrix of `cols` columns: the
    /// per-sample tree-lockstep walk for wide rows over a deep ensemble
    /// (row stays in L1, lanes stay busy), sample blocks otherwise.
    #[inline]
    fn prefers_tree_lockstep(&self, cols: usize) -> bool {
        cols >= WIDE_ROW_THRESHOLD && self.active_counts.len() >= DEEP_ENSEMBLE_DEPTH
    }

    /// Advances *all trees* through one sample in lockstep, visiting trees
    /// in descending-depth order so that at step `s` only the still-active
    /// prefix is walked. The sample's row stays hot in L1 for the whole
    /// ensemble — the winning layout for wide (image-like) rows, where a
    /// block of rows would not fit in cache.
    ///
    /// `states` must have `num_trees` slots; `sink(tree, label)` receives
    /// every tree's leaf label (class index).
    #[inline]
    fn tree_lockstep(&self, row: &[f64], states: &mut [u32], mut sink: impl FnMut(usize, u32)) {
        let nodes = self.hot.as_slice();
        for (lane, &tree) in self.depth_order.iter().enumerate() {
            states[lane] = self.tree_starts[tree as usize];
        }
        for &active in &self.active_counts {
            for state in states[..active as usize].iter_mut() {
                let node = nodes[*state as usize];
                let value = row[node.feature as usize];
                *state = if value <= node.threshold {
                    node.left
                } else {
                    node.right
                };
            }
        }
        for (lane, &tree) in self.depth_order.iter().enumerate() {
            sink(tree as usize, nodes[states[lane] as usize].left);
        }
    }

    /// Per-tree predictions for one instance, in tree order; equivalent to
    /// [`RandomForest::predict_all`].
    ///
    /// # Panics
    /// Panics if `instance.len() < num_features()`.
    pub fn predict_all(&self, instance: &[f64]) -> Vec<Label> {
        (0..self.num_trees())
            .map(|t| self.walk(self.tree_starts[t] as usize, instance))
            .collect()
    }

    /// Plurality-vote prediction for one instance (ties go to the lowest
    /// class index); equivalent to [`RandomForest::predict`].
    pub fn predict(&self, instance: &[f64]) -> Label {
        let mut counts = vec![0u32; self.num_classes.max(2)];
        for tree in 0..self.num_trees() {
            counts[self.walk(self.tree_starts[tree] as usize, instance).index()] += 1;
        }
        Label::from_index(argmax_class(&counts)).expect("class index fits u16")
    }

    /// Block-wise plurality-vote predictions for every row of a feature
    /// matrix. This is the deployment hot path: all trees are walked over
    /// one block of samples before moving to the next block, so a tree's
    /// node arrays stay cached across the whole block.
    ///
    /// # Panics
    /// Panics if `features.cols() < num_features()`.
    pub fn predict_batch(&self, features: &DenseMatrix) -> Vec<Label> {
        self.predict_batch_with(features, Kernel::Scalar)
    }

    /// Block-wise per-class vote counts, sample-major (`samples × k`, one
    /// `u32` per class per row), through the scalar reference kernel.
    ///
    /// # Panics
    /// Panics if `features.cols() < num_features()`.
    pub fn class_vote_counts(&self, features: &DenseMatrix) -> Vec<u32> {
        self.class_vote_counts_with(features, Kernel::Scalar)
    }

    /// [`Self::class_vote_counts`] through an explicitly selected kernel;
    /// every kernel returns bit-identical counts.
    ///
    /// # Panics
    /// Panics if `features.cols() < num_features()`.
    pub fn class_vote_counts_with(&self, features: &DenseMatrix, kernel: Kernel) -> Vec<u32> {
        assert!(
            features.cols() >= self.num_features,
            "batch has {} features but the model needs {}",
            features.cols(),
            self.num_features
        );
        let samples = features.rows();
        let values = features.as_slice();
        let cols = features.cols();
        let mut votes = vec![0u32; samples * self.num_classes.max(2)];
        let resolved = self.resolve_kernel(kernel, values, cols, samples);
        resolved.implementation().vote_rows(self, values, cols, samples, &mut votes);
        votes
    }

    /// Block-wise count of trees voting positive (class 1), per row,
    /// through the scalar reference kernel; the one-vs-rest view of class
    /// 1 for `k > 2`.
    ///
    /// # Panics
    /// Panics if `features.cols() < num_features()`.
    pub fn positive_vote_counts(&self, features: &DenseMatrix) -> Vec<u32> {
        self.positive_vote_counts_with(features, Kernel::Scalar)
    }

    /// [`Self::positive_vote_counts`] through an explicitly selected
    /// kernel; every kernel returns bit-identical counts.
    ///
    /// # Panics
    /// Panics if `features.cols() < num_features()`.
    pub fn positive_vote_counts_with(&self, features: &DenseMatrix, kernel: Kernel) -> Vec<u32> {
        let classes = self.num_classes.max(2);
        self.class_vote_counts_with(features, kernel)
            .chunks_exact(classes)
            .map(|row| row[1])
            .collect()
    }

    /// Scalar per-class-vote kernel body: the tree-lockstep walk for wide
    /// rows over deep ensembles, 64-sample blocks otherwise. `votes` is
    /// sample-major with `num_classes` slots per row.
    fn scalar_vote_rows(&self, values: &[f64], cols: usize, samples: usize, votes: &mut [u32]) {
        let classes = self.num_classes.max(2);
        if self.prefers_tree_lockstep(cols) {
            let mut states = vec![0u32; self.num_trees()];
            for (sample, row_votes) in votes.chunks_exact_mut(classes).enumerate().take(samples) {
                let row = &values[sample * cols..(sample + 1) * cols];
                // Leaf labels are class indices, so each vote is one
                // increment of that class's slot.
                self.tree_lockstep(row, &mut states, |_, label| row_votes[label as usize] += 1);
            }
            return;
        }
        let mut states = [0u32; BLOCK_SIZE];
        for block_start in (0..samples).step_by(BLOCK_SIZE) {
            let block_end = (block_start + BLOCK_SIZE).min(samples);
            let block = block_start..block_end;
            for tree in 0..self.num_trees() {
                self.lockstep_block(tree, values, cols, block.clone(), &mut states, |lane, label| {
                    votes[(block_start + lane) * classes + label as usize] += 1;
                });
            }
        }
    }

    /// Resolves a requested [`Kernel`] into the concrete strategy used for
    /// a batch of this shape. Zero-column batches (leaf-only models over
    /// empty rows) always take the scalar walk, whose gathers never touch
    /// the row; `Auto` is resolved by a one-time microprobe on the first
    /// non-empty batch and memoized for the lifetime of this compiled
    /// forest.
    fn resolve_kernel(
        &self,
        kernel: Kernel,
        values: &[f64],
        cols: usize,
        samples: usize,
    ) -> ResolvedKernel {
        if cols == 0 {
            return ResolvedKernel::Scalar;
        }
        match kernel {
            Kernel::Scalar => ResolvedKernel::Scalar,
            Kernel::Blocked => ResolvedKernel::Blocked {
                width: DEFAULT_BLOCK_WIDTH,
            },
            Kernel::Quantized => ResolvedKernel::Quantized {
                width: DEFAULT_BLOCK_WIDTH,
            },
            Kernel::Auto => {
                if samples == 0 {
                    // Nothing to probe on; do not memoize a degenerate choice.
                    return ResolvedKernel::Scalar;
                }
                *self.auto.get_or_init(|| kernel::autotune(self, values, cols, samples))
            }
        }
    }

    /// The concrete kernel a request would run as, for diagnostics:
    /// `Auto` reports `None` until its first-batch microprobe has run.
    pub fn resolved_kernel(&self, kernel: Kernel) -> Option<ResolvedKernel> {
        match kernel {
            Kernel::Scalar => Some(ResolvedKernel::Scalar),
            Kernel::Blocked => Some(ResolvedKernel::Blocked {
                width: DEFAULT_BLOCK_WIDTH,
            }),
            Kernel::Quantized => Some(ResolvedKernel::Quantized {
                width: DEFAULT_BLOCK_WIDTH,
            }),
            Kernel::Auto => self.auto.get().copied(),
        }
    }

    /// Fraction of trees voting positive, per row; the calibrated score
    /// used by the suppression distinguisher and ROC analysis.
    pub fn positive_vote_fractions(&self, features: &DenseMatrix) -> Vec<f64> {
        let trees = self.num_trees().max(1) as f64;
        self.positive_vote_counts(features)
            .into_iter()
            .map(|v| f64::from(v) / trees)
            .collect()
    }

    /// Block-wise per-tree predictions for every row — the batch form of
    /// [`CompiledForest::predict_all`], which black-box verification
    /// consumes. Runs the scalar reference kernel; see
    /// [`Self::predict_all_batch_with`] for kernel selection.
    ///
    /// # Panics
    /// Panics if `features.cols() < num_features()`.
    pub fn predict_all_batch(&self, features: &DenseMatrix) -> BatchPredictions {
        self.predict_all_batch_with(features, Kernel::Scalar)
    }

    /// [`Self::predict_all_batch`] through an explicitly selected kernel;
    /// every kernel returns bit-identical predictions.
    ///
    /// # Panics
    /// Panics if `features.cols() < num_features()`.
    pub fn predict_all_batch_with(&self, features: &DenseMatrix, kernel: Kernel) -> BatchPredictions {
        assert!(
            features.cols() >= self.num_features,
            "batch has {} features but the model needs {}",
            features.cols(),
            self.num_features
        );
        let (values, cols, samples) = (features.as_slice(), features.cols(), features.rows());
        let resolved = self.resolve_kernel(kernel, values, cols, samples);
        self.predict_all_rows(values, cols, samples, resolved)
    }

    /// [`Self::predict_all_batch`] over a raw row-major slice; lets the
    /// sharded path predict sub-ranges of a matrix without copying rows.
    fn predict_all_rows(
        &self,
        values: &[f64],
        cols: usize,
        samples: usize,
        resolved: ResolvedKernel,
    ) -> BatchPredictions {
        let num_trees = self.num_trees();
        let mut labels = vec![Label::Negative; samples * num_trees];
        resolved
            .implementation()
            .predict_all_rows(self, values, cols, samples, &mut labels);
        BatchPredictions {
            labels,
            num_trees,
            num_classes: self.num_classes,
        }
    }

    /// Scalar per-tree-prediction kernel body: the tree-lockstep walk for
    /// wide rows over deep ensembles, 64-sample blocks otherwise.
    fn scalar_predict_all_rows(
        &self,
        values: &[f64],
        cols: usize,
        samples: usize,
        labels: &mut [Label],
    ) {
        let num_trees = self.num_trees();
        if self.prefers_tree_lockstep(cols) {
            let mut states = vec![0u32; num_trees];
            for sample in 0..samples {
                let row = &values[sample * cols..(sample + 1) * cols];
                let out = &mut labels[sample * num_trees..(sample + 1) * num_trees];
                self.tree_lockstep(row, &mut states, |tree, label| {
                    out[tree] = Label::from_index(label as usize).expect("validated leaf class");
                });
            }
            return;
        }
        let mut states = [0u32; BLOCK_SIZE];
        for block_start in (0..samples).step_by(BLOCK_SIZE) {
            let block_end = (block_start + BLOCK_SIZE).min(samples);
            let block = block_start..block_end;
            for tree in 0..num_trees {
                self.lockstep_block(tree, values, cols, block.clone(), &mut states, |lane, label| {
                    labels[(block_start + lane) * num_trees + tree] =
                        Label::from_index(label as usize).expect("validated leaf class");
                });
            }
        }
    }

    /// [`Self::predict_all_batch`] sharded across the work-stealing pool:
    /// rows are split into contiguous shards of at most `shard_rows`, each
    /// shard is predicted independently, and the per-sample votes are
    /// stitched back in row order — bit-identical to the single-threaded
    /// call for every shard size and worker count. This is the
    /// dispute-service hot path, where one verification batch can carry
    /// thousands of disguised queries; called from inside an outer
    /// per-dispute fan-out, the shards become nested pool jobs that idle
    /// workers steal, rather than serializing on the dispute's thread.
    ///
    /// # Panics
    /// Panics if `features.cols() < num_features()`.
    pub fn par_predict_all_batch(&self, features: &DenseMatrix, shard_rows: usize) -> BatchPredictions {
        self.par_predict_all_batch_with(features, shard_rows, Kernel::Scalar)
    }

    /// [`Self::par_predict_all_batch`] through an explicitly selected
    /// kernel. `Auto` is resolved once on the whole batch before sharding,
    /// so every shard runs the same concrete kernel. Batches that would
    /// fit in a single shard — and any batch on a single-worker pool,
    /// where sharding could only add stitch overhead — take the serial
    /// path directly.
    ///
    /// # Panics
    /// Panics if `features.cols() < num_features()`.
    pub fn par_predict_all_batch_with(
        &self,
        features: &DenseMatrix,
        shard_rows: usize,
        kernel: Kernel,
    ) -> BatchPredictions {
        use rayon::prelude::*;
        let shard_rows = shard_rows.max(1);
        let samples = features.rows();
        let cols = features.cols();
        if samples <= shard_rows || cols == 0 || rayon::current_num_threads() <= 1 {
            return self.predict_all_batch_with(features, kernel);
        }
        assert!(
            cols >= self.num_features,
            "batch has {} features but the model needs {}",
            cols,
            self.num_features
        );
        let values = features.as_slice();
        let resolved = self.resolve_kernel(kernel, values, cols, samples);
        let starts: Vec<usize> = (0..samples).step_by(shard_rows).collect();
        let shards: Vec<BatchPredictions> = starts
            .into_par_iter()
            .map(|start| {
                let end = (start + shard_rows).min(samples);
                // Rows are contiguous in row-major storage, so a shard is a
                // borrowed subslice — no copy.
                self.predict_all_rows(&values[start * cols..end * cols], cols, end - start, resolved)
            })
            .collect();
        let num_trees = self.num_trees();
        let mut labels = Vec::with_capacity(samples * num_trees);
        for shard in shards {
            labels.extend(shard.labels);
        }
        BatchPredictions {
            labels,
            num_trees,
            num_classes: self.num_classes,
        }
    }

    /// [`Self::predict_batch`] through an explicitly selected kernel.
    ///
    /// # Panics
    /// Panics if `features.cols() < num_features()`.
    pub fn predict_batch_with(&self, features: &DenseMatrix, kernel: Kernel) -> Vec<Label> {
        let classes = self.num_classes.max(2);
        self.class_vote_counts_with(features, kernel)
            .chunks_exact(classes)
            .map(|row| Label::from_index(argmax_class(row)).expect("class index fits u16"))
            .collect()
    }

    /// Plurality-vote predictions for every instance of a dataset.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Vec<Label> {
        self.predict_batch(dataset.features())
    }

    /// Plurality-vote accuracy over a dataset.
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let predictions = self.predict_dataset(dataset);
        wdte_data::accuracy(dataset.labels(), &predictions)
    }

    /// Structural statistics of every tree, in tree order; matches
    /// [`RandomForest::tree_stats`] for the forest this was compiled from,
    /// so the structural detection attack can run against a compiled
    /// artifact loaded from disk.
    pub fn tree_stats(&self) -> Vec<TreeStats> {
        (0..self.num_trees())
            .map(|tree| {
                let (lo, hi) = self.segment(tree);
                let leaves = (lo..hi).filter(|&n| self.feature[n] == LEAF_MARKER).count();
                TreeStats {
                    depth: self.depths[tree] as usize,
                    leaves,
                    nodes: hi - lo,
                }
            })
            .collect()
    }

    /// Rebuilds a compiled forest from raw arrays, validating every
    /// structural invariant. This is the only way external data (a
    /// deserialized file) becomes a `CompiledForest`, so a corrupted
    /// artifact surfaces as an error here instead of an out-of-bounds
    /// panic during prediction.
    pub fn from_raw_parts(
        feature: Vec<u32>,
        threshold: Vec<f64>,
        left: Vec<u32>,
        right: Vec<u32>,
        tree_starts: Vec<u32>,
        num_features: usize,
        num_classes: usize,
    ) -> Result<Self, String> {
        let num_classes = num_classes.max(2);
        if num_classes > Label::MAX_CLASSES {
            return Err(format!(
                "num_classes {num_classes} exceeds the supported maximum {}",
                Label::MAX_CLASSES
            ));
        }
        let nodes = feature.len();
        if threshold.len() != nodes || left.len() != nodes || right.len() != nodes {
            return Err(format!(
                "node array lengths disagree: feature {}, threshold {}, left {}, right {}",
                nodes,
                threshold.len(),
                left.len(),
                right.len()
            ));
        }
        if tree_starts.len() < 2 {
            return Err("tree_starts must hold at least one tree".to_string());
        }
        if tree_starts[0] != 0 || *tree_starts.last().expect("non-empty") as usize != nodes {
            return Err(format!(
                "tree_starts must span [0, {nodes}], got [{}, {}]",
                tree_starts[0],
                tree_starts.last().expect("non-empty")
            ));
        }
        for window in tree_starts.windows(2) {
            if window[0] >= window[1] {
                return Err("every tree needs at least one node".to_string());
            }
        }
        for tree in 0..tree_starts.len() - 1 {
            let (lo, hi) = (tree_starts[tree] as usize, tree_starts[tree + 1] as usize);
            let mut child_refs = vec![0u32; hi - lo];
            for node in lo..hi {
                if feature[node] == LEAF_MARKER {
                    if left[node] as usize >= num_classes {
                        return Err(format!(
                            "leaf node {node} has class index {} but the model has {num_classes} classes",
                            left[node]
                        ));
                    }
                } else {
                    if (feature[node] as usize) >= num_features {
                        return Err(format!(
                            "node {node} tests feature {} but the model has {num_features}",
                            feature[node]
                        ));
                    }
                    for child in [left[node], right[node]] {
                        let child = child as usize;
                        // Children must stay inside the same tree and point
                        // strictly forward, which also rules out traversal
                        // cycles.
                        if child <= node || child >= hi {
                            return Err(format!(
                                "node {node} has child {child} outside its tree segment [{lo}, {hi})"
                            ));
                        }
                        child_refs[child - lo] += 1;
                    }
                }
            }
            // Every non-root node must be referenced exactly once: shared
            // children would make the arrays a DAG, on which the depth
            // computation below enumerates exponentially many paths (and
            // more than one parent never arises from `compile`).
            for (offset, &refs) in child_refs.iter().enumerate().skip(1) {
                if refs != 1 {
                    return Err(format!(
                        "node {} is referenced by {refs} parents; trees reference every non-root node exactly once",
                        lo + offset
                    ));
                }
            }
        }
        let hot = build_hot(&feature, &threshold, &left, &right);
        let depths = build_depths(&feature, &left, &right, &tree_starts);
        let (depth_order, active_counts) = build_schedule(&depths);
        let level = LevelLayout::build(&feature, &threshold, &left, &right, &tree_starts);
        Ok(CompiledForest {
            feature,
            threshold,
            left,
            right,
            tree_starts,
            num_features,
            num_classes,
            hot,
            depths,
            depth_order,
            active_counts,
            level,
            auto: OnceLock::new(),
        })
    }
}

/// Only the canonical SoA arrays are serialized; the packed traversal
/// table is rebuilt on load.
impl Serialize for CompiledForest {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("feature".to_string(), self.feature.to_value()),
            ("threshold".to_string(), self.threshold.to_value()),
            ("left".to_string(), self.left.to_value()),
            ("right".to_string(), self.right.to_value()),
            ("tree_starts".to_string(), self.tree_starts.to_value()),
            ("num_features".to_string(), self.num_features.to_value()),
            ("num_classes".to_string(), self.num_classes.to_value()),
        ])
    }
}

impl From<&RandomForest> for CompiledForest {
    fn from(forest: &RandomForest) -> Self {
        CompiledForest::compile(forest)
    }
}

/// Deserialization is routed through [`CompiledForest::from_raw_parts`] so
/// corrupted artifacts are rejected with an error instead of panicking
/// later during traversal.
impl Deserialize for CompiledForest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value.as_map().ok_or_else(|| DeError::expected("map", "CompiledForest"))?;
        let feature = Vec::from_value(serde::map_get(entries, "feature")?)?;
        let threshold = Vec::from_value(serde::map_get(entries, "threshold")?)?;
        let left = Vec::from_value(serde::map_get(entries, "left")?)?;
        let right = Vec::from_value(serde::map_get(entries, "right")?)?;
        let tree_starts: Vec<u32> = Vec::from_value(serde::map_get(entries, "tree_starts")?)?;
        let num_features = usize::from_value(serde::map_get(entries, "num_features")?)?;
        // Artifacts written before the k-class generalization carry no
        // class count; they are binary by construction, except that any
        // larger leaf index present still raises it so validation passes
        // exactly when the arrays are self-consistent.
        let num_classes = match entries.iter().find(|(key, _)| key == "num_classes") {
            Some((_, value)) => usize::from_value(value)?,
            None => feature
                .iter()
                .zip(&left)
                .filter(|(&f, _)| f == LEAF_MARKER)
                .map(|(_, &label)| label as usize + 1)
                .max()
                .unwrap_or(2)
                .max(2),
        };
        CompiledForest::from_raw_parts(
            feature,
            threshold,
            left,
            right,
            tree_starts,
            num_features,
            num_classes,
        )
        .map_err(|detail| DeError::new(format!("invalid CompiledForest: {detail}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ForestParams, TreeParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;

    fn trained() -> (Dataset, RandomForest) {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.5)
            .generate(&mut SmallRng::seed_from_u64(123));
        let params = ForestParams {
            num_trees: 9,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(124));
        (dataset, forest)
    }

    #[test]
    fn compiled_predictions_match_recursive_predictions() {
        let (dataset, forest) = trained();
        let compiled = CompiledForest::compile(&forest);
        assert_eq!(compiled.num_trees(), forest.num_trees());
        assert_eq!(compiled.num_features(), forest.num_features());
        let batch = compiled.predict_all_batch(dataset.features());
        for (index, (row, _)) in dataset.iter().enumerate() {
            assert_eq!(compiled.predict_all(row), forest.predict_all(row));
            assert_eq!(compiled.predict(row), forest.predict(row));
            assert_eq!(batch.sample(index), forest.predict_all(row).as_slice());
            assert_eq!(batch.majority(index), forest.predict(row));
        }
        assert_eq!(
            compiled.predict_dataset(&dataset),
            forest.predict_dataset(&dataset)
        );
        assert!((compiled.accuracy(&dataset) - forest.accuracy(&dataset)).abs() < 1e-15);
    }

    #[test]
    fn vote_fractions_match_the_recursive_path() {
        let (dataset, forest) = trained();
        let compiled = CompiledForest::compile(&forest);
        let fractions = compiled.positive_vote_fractions(dataset.features());
        for (index, (row, _)) in dataset.iter().enumerate() {
            assert!((fractions[index] - forest.positive_vote_fraction(row)).abs() < 1e-15);
        }
    }

    #[test]
    fn tree_stats_match_the_pointer_trees() {
        let (_, forest) = trained();
        let compiled = CompiledForest::compile(&forest);
        assert_eq!(compiled.tree_stats(), forest.tree_stats());
        assert_eq!(
            compiled.total_nodes(),
            forest.trees().iter().map(|t| t.nodes().len()).sum::<usize>()
        );
    }

    #[test]
    fn nan_features_descend_right_like_the_recursive_walk() {
        let (dataset, forest) = trained();
        let compiled = CompiledForest::compile(&forest);
        let mut row = dataset.instance(0).to_vec();
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for feature in 0..row.len() {
                let original = row[feature];
                row[feature] = poison;
                assert_eq!(compiled.predict_all(&row), forest.predict_all(&row));
                row[feature] = original;
            }
        }
    }

    #[test]
    fn batch_blocks_cover_sizes_around_the_block_boundary() {
        let (dataset, forest) = trained();
        let compiled = CompiledForest::compile(&forest);
        for size in [1, BLOCK_SIZE - 1, BLOCK_SIZE, BLOCK_SIZE + 1] {
            let size = size.min(dataset.len());
            let indices: Vec<usize> = (0..size).collect();
            let subset = dataset.select(&indices).unwrap();
            let compiled_out = compiled.predict_batch(subset.features());
            let recursive_out = forest.predict_dataset(&subset);
            assert_eq!(compiled_out, recursive_out, "batch size {size}");
        }
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let (dataset, forest) = trained();
        let compiled = CompiledForest::compile(&forest);
        let json = serde_json::to_string(&compiled).unwrap();
        let restored: CompiledForest = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, compiled);
        assert_eq!(
            restored.predict_batch(dataset.features()),
            compiled.predict_batch(dataset.features())
        );
    }

    #[test]
    fn from_raw_parts_rejects_corrupted_arrays() {
        let (_, forest) = trained();
        let compiled = CompiledForest::compile(&forest);
        // Mismatched array lengths.
        assert!(CompiledForest::from_raw_parts(
            compiled.feature.clone(),
            vec![0.0; 1],
            compiled.left.clone(),
            compiled.right.clone(),
            compiled.tree_starts.clone(),
            compiled.num_features,
            compiled.num_classes,
        )
        .is_err());
        // Child index escaping its tree segment.
        let mut bad_left = compiled.left.clone();
        if let Some(internal) = (0..compiled.feature.len()).find(|&n| compiled.feature[n] != LEAF_MARKER)
        {
            bad_left[internal] = compiled.feature.len() as u32 + 7;
            assert!(CompiledForest::from_raw_parts(
                compiled.feature.clone(),
                compiled.threshold.clone(),
                bad_left,
                compiled.right.clone(),
                compiled.tree_starts.clone(),
                compiled.num_features,
                compiled.num_classes,
            )
            .is_err());
        }
        // Backwards child (cycle).
        let mut cyclic_right = compiled.right.clone();
        if let Some(internal) = (0..compiled.feature.len()).find(|&n| compiled.feature[n] != LEAF_MARKER)
        {
            cyclic_right[internal] = internal as u32;
            assert!(CompiledForest::from_raw_parts(
                compiled.feature.clone(),
                compiled.threshold.clone(),
                compiled.left.clone(),
                cyclic_right,
                compiled.tree_starts.clone(),
                compiled.num_features,
                compiled.num_classes,
            )
            .is_err());
        }
        // Feature index beyond the model dimensionality.
        let mut bad_feature = compiled.feature.clone();
        if let Some(internal) = (0..compiled.feature.len()).find(|&n| compiled.feature[n] != LEAF_MARKER)
        {
            bad_feature[internal] = compiled.num_features as u32;
            assert!(CompiledForest::from_raw_parts(
                bad_feature,
                compiled.threshold.clone(),
                compiled.left.clone(),
                compiled.right.clone(),
                compiled.tree_starts.clone(),
                compiled.num_features,
                compiled.num_classes,
            )
            .is_err());
        }
        // Node-sharing DAGs (left == right) must be rejected: the depth
        // computation would enumerate exponentially many root→leaf paths.
        let chain = 40u32;
        let dag_feature: Vec<u32> =
            (0..chain).map(|n| if n + 1 == chain { LEAF_MARKER } else { 0 }).collect();
        let dag_left: Vec<u32> = (0..chain).map(|n| if n + 1 == chain { 0 } else { n + 1 }).collect();
        let dag_right: Vec<u32> = dag_left.clone();
        assert!(CompiledForest::from_raw_parts(
            dag_feature,
            vec![0.5; chain as usize],
            dag_left,
            dag_right,
            vec![0, chain],
            1,
            2,
        )
        .unwrap_err()
        .contains("exactly once"));

        // The untouched arrays still validate.
        assert!(CompiledForest::from_raw_parts(
            compiled.feature.clone(),
            compiled.threshold.clone(),
            compiled.left.clone(),
            compiled.right.clone(),
            compiled.tree_starts.clone(),
            compiled.num_features,
            compiled.num_classes,
        )
        .is_ok());
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let rows = vec![vec![0.0], vec![1.0]];
        let labels = vec![Label::Positive, Label::Positive];
        let dataset = Dataset::new("pure", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap();
        let forest = RandomForest::fit(
            &dataset,
            &ForestParams {
                num_trees: 2,
                tree: TreeParams::with_max_depth(0),
                ..ForestParams::default()
            },
            &mut SmallRng::seed_from_u64(1),
        );
        let compiled = CompiledForest::compile(&forest);
        assert_eq!(compiled.total_nodes(), 2);
        assert_eq!(compiled.predict(&[0.5]), Label::Positive);
        assert_eq!(compiled.predict_all(&[0.5]), vec![Label::Positive; 2]);
    }
}
