//! Presorted and histogram split search over per-node segments.
//!
//! This module implements the production split strategies
//! ([`crate::SplitStrategy::Exact`] and
//! [`crate::SplitStrategy::Histogram`]). Both avoid the naive search's
//! per-node sort + gather by working over **dataset-level precomputed
//! views** (`Dataset::presort` / `Dataset::binning`) and a reusable
//! [`SplitWorkspace`]:
//!
//! * **Exact (presorted CART)** — at tree start the candidate features'
//!   sorted `(value, row)` columns are copied from the shared presort into
//!   the workspace. Each tree node owns one contiguous segment `[lo, hi)`
//!   of every column; splitting a node stably partitions its segment into
//!   the two children's segments, preserving sort order, so no node ever
//!   sorts anything. Scans are sequential over column-major buffers.
//! * **Histogram** — nodes own a segment of a single row-membership
//!   buffer; for each candidate feature the node accumulates a weighted
//!   class histogram over precomputed per-sample bin codes and considers
//!   only bin edges as thresholds.
//!
//! Class-weight bookkeeping is branchless: instead of matching on the
//! label per sample (a ~50%-mispredicted branch on shuffled labels), each
//! sample carries a `(weight-if-positive, weight-if-negative)` pair where
//! the inactive side is `0.0`. Adding `0.0` is a bitwise no-op for the
//! non-negative accumulators involved, so results stay bit-identical to
//! the naive reference while the scan loop vectorizes.
//!
//! After the one-time workspace initialization, node expansion performs
//! **zero heap allocations**: segment partitioning writes through
//! preallocated scratch buffers and frontier bookkeeping stores plain
//! index ranges.

use crate::params::SplitCriterion;
use crate::split::{children_impurity, gini_scale, impurity, midpoint_threshold, Split};
use std::sync::Arc;
use wdte_data::{Binning, ClassCounts, Label, Presort};

/// Reusable buffers for segment-based tree construction. Create once (or
/// reuse across trees via [`crate::DecisionTree::fit_weighted_with_workspace`])
/// and the builder resizes it as needed; steady-state node expansion
/// allocates nothing.
#[derive(Debug, Default)]
pub struct SplitWorkspace {
    /// Exact mode: `k × n` feature values, per-candidate-feature columns,
    /// each column segment-sorted. Histogram mode: unused.
    vals: Vec<f64>,
    /// Exact mode: `k × n` row ids parallel to `vals`. Histogram mode:
    /// unused.
    rows: Vec<u32>,
    /// Exact mode: `k × n` per-sample weight-if-positive (`0.0` for
    /// negative samples), parallel to `vals`; gathered once per tree so
    /// the scan reads sequentially and branch-free.
    wpos: Vec<f64>,
    /// Exact mode: `k × n` per-sample weight-if-negative, parallel to
    /// `vals`.
    wneg: Vec<f64>,
    /// Per-row weight-if-positive (`n`), rebuilt per tree (weights change
    /// between Algorithm 1 rounds).
    row_wpos: Vec<f64>,
    /// Per-row weight-if-negative (`n`).
    row_wneg: Vec<f64>,
    /// Node membership buffer (`n` row ids, ascending within each node's
    /// segment — the same iteration order as the naive builder's index
    /// lists, which keeps weighted-count summation bit-identical).
    member: Vec<u32>,
    /// Row-indexed membership mask used while partitioning a node.
    goes_left: Vec<bool>,
    /// Partition scratch for the right-child run (values).
    scratch_vals: Vec<f64>,
    /// Partition scratch for the right-child run (row ids).
    scratch_rows: Vec<u32>,
    /// Partition scratch for the right-child run (weight-if-positive).
    scratch_wpos: Vec<f64>,
    /// Partition scratch for the right-child run (weight-if-negative).
    scratch_wneg: Vec<f64>,
    /// Histogram mode: per-bin positive weight, reused per feature.
    hist_pos: Vec<f64>,
    /// Histogram mode: per-bin negative weight, reused per feature.
    hist_neg: Vec<f64>,
    /// Histogram mode: per-bin sample counts, reused per feature.
    hist_n: Vec<u32>,
}

impl SplitWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The shared per-dataset view a splitter searches over.
pub(crate) enum Backend {
    /// Presorted exact search.
    Exact(Arc<Presort>),
    /// Quantile-histogram search.
    Histogram(Arc<Binning>),
}

/// Segment-based split searcher; one per tree under construction.
pub(crate) struct NodeSplitter<'a> {
    backend: Backend,
    labels: &'a [Label],
    weights: &'a [f64],
    candidates: &'a [usize],
    criterion: SplitCriterion,
    min_samples_leaf: usize,
    n: usize,
    ws: &'a mut SplitWorkspace,
}

impl<'a> NodeSplitter<'a> {
    /// Prepares the workspace for a tree over `n` samples and hands back
    /// the splitter. The root node owns the full segment `[0, n)`.
    pub(crate) fn new(
        backend: Backend,
        labels: &'a [Label],
        weights: &'a [f64],
        candidates: &'a [usize],
        criterion: SplitCriterion,
        min_samples_leaf: usize,
        ws: &'a mut SplitWorkspace,
    ) -> Self {
        let n = labels.len();
        let k = candidates.len();
        // Buffers are sized with `resize_buffer` (no re-zeroing when the
        // size is unchanged — every entry that is read is written first,
        // either here or during partitioning).
        resize_buffer(&mut ws.goes_left, n, false);
        resize_buffer(&mut ws.scratch_vals, n, 0.0);
        resize_buffer(&mut ws.scratch_rows, n, 0);
        ws.member.clear();
        ws.member.extend(0..n as u32);
        // Branchless class-weight pairs, one branch per row instead of one
        // per (row, feature, node) during scans.
        resize_buffer(&mut ws.row_wpos, n, 0.0);
        resize_buffer(&mut ws.row_wneg, n, 0.0);
        for row in 0..n {
            let weight = weights[row];
            if labels[row] == Label::Positive {
                ws.row_wpos[row] = weight;
                ws.row_wneg[row] = 0.0;
            } else {
                ws.row_wpos[row] = 0.0;
                ws.row_wneg[row] = weight;
            }
        }
        match &backend {
            Backend::Exact(presort) => {
                resize_buffer(&mut ws.vals, k * n, 0.0);
                resize_buffer(&mut ws.rows, k * n, 0);
                resize_buffer(&mut ws.wpos, k * n, 0.0);
                resize_buffer(&mut ws.wneg, k * n, 0.0);
                resize_buffer(&mut ws.scratch_wpos, n, 0.0);
                resize_buffer(&mut ws.scratch_wneg, n, 0.0);
                for (ci, &feature) in candidates.iter().enumerate() {
                    let base = ci * n;
                    ws.vals[base..base + n].copy_from_slice(presort.sorted_values(feature));
                    ws.rows[base..base + n].copy_from_slice(presort.sorted_rows(feature));
                    for position in 0..n {
                        let row = ws.rows[base + position] as usize;
                        ws.wpos[base + position] = ws.row_wpos[row];
                        ws.wneg[base + position] = ws.row_wneg[row];
                    }
                }
            }
            Backend::Histogram(binning) => {
                let bins = binning.max_bins();
                resize_buffer(&mut ws.hist_pos, bins, 0.0);
                resize_buffer(&mut ws.hist_neg, bins, 0.0);
                resize_buffer(&mut ws.hist_n, bins, 0);
            }
        }
        NodeSplitter {
            backend,
            labels,
            weights,
            candidates,
            criterion,
            min_samples_leaf,
            n,
            ws,
        }
    }

    /// The rows belonging to the node that owns segment `[lo, hi)`, in
    /// ascending row order (stable partitioning preserves it).
    #[inline]
    pub(crate) fn node_rows(&self, lo: usize, hi: usize) -> &[u32] {
        &self.ws.member[lo..hi]
    }

    /// Weighted class counts of a node, summed in ascending row order (the
    /// naive builder's order, for bit-identical results).
    pub(crate) fn counts(&self, lo: usize, hi: usize) -> ClassCounts {
        let mut counts = ClassCounts::new();
        for &row in self.node_rows(lo, hi) {
            let row = row as usize;
            counts.add(self.labels[row], self.weights[row]);
        }
        counts
    }

    /// Finds the best split of the node owning `[lo, hi)`; mirrors the
    /// acceptance rules of the naive reference search exactly (same
    /// thresholds, same `min_samples_leaf` handling, same zero-gain
    /// policy, same feature-order tie-breaking).
    pub(crate) fn best_split(
        &mut self,
        lo: usize,
        hi: usize,
        parent_counts: &ClassCounts,
    ) -> Option<Split> {
        if hi - lo < 2 * self.min_samples_leaf.max(1) {
            return None;
        }
        let parent_impurity = impurity(parent_counts, self.criterion);
        if parent_impurity <= 0.0 {
            return None; // already pure
        }
        let total_weight = parent_counts.total();
        if total_weight <= 0.0 {
            return None;
        }
        match &self.backend {
            Backend::Exact(_) => self.best_split_exact(lo, hi, parent_counts, parent_impurity),
            Backend::Histogram(binning) => {
                let binning = Arc::clone(binning);
                self.best_split_histogram(&binning, lo, hi, parent_counts, parent_impurity)
            }
        }
    }

    fn best_split_exact(
        &self,
        lo: usize,
        hi: usize,
        parent_counts: &ClassCounts,
        parent_impurity: f64,
    ) -> Option<Split> {
        let n = self.n;
        let len = hi - lo;
        let total_weight = parent_counts.total();
        let scale = gini_scale(total_weight);
        let min1 = self.min_samples_leaf.max(1);
        let mut best: Option<Split> = None;
        // Running best gain as a plain scalar so the hot loop compares
        // without touching the (large) `Split` struct.
        let mut best_gain = f64::NEG_INFINITY;
        for (ci, &feature) in self.candidates.iter().enumerate() {
            let base = ci * n;
            let vals = &self.ws.vals[base + lo..base + hi];
            let wpos = &self.ws.wpos[base + lo..base + hi];
            let wneg = &self.ws.wneg[base + lo..base + hi];
            if vals[len - 1] == vals[0] {
                continue; // constant within this node: no admissible boundary
            }
            // Sorted order puts -inf first and NaN/+inf last, so finite
            // endpoints prove the whole segment finite and the hot loop
            // can drop its per-boundary finiteness checks.
            let scan = ScanArgs {
                vals,
                wpos,
                wneg,
                parent_counts,
                parent_impurity,
                total_weight,
                scale,
                criterion: self.criterion,
                min1,
                feature,
            };
            if vals[0].is_finite() && vals[len - 1].is_finite() {
                scan_feature_exact::<true>(&scan, &mut best, &mut best_gain);
            } else {
                scan_feature_exact::<false>(&scan, &mut best, &mut best_gain);
            }
        }
        best
    }

    fn best_split_histogram(
        &mut self,
        binning: &Binning,
        lo: usize,
        hi: usize,
        parent_counts: &ClassCounts,
        parent_impurity: f64,
    ) -> Option<Split> {
        let len = hi - lo;
        let total_weight = parent_counts.total();
        let scale = gini_scale(total_weight);
        let mut best: Option<Split> = None;
        let ws = &mut *self.ws;
        for &feature in self.candidates {
            let bins = binning.num_bins(feature);
            if bins < 2 {
                continue; // constant feature
            }
            let codes = binning.codes(feature);
            // Accumulate the node's weighted class histogram (branch-free,
            // see the module docs).
            ws.hist_pos[..bins].fill(0.0);
            ws.hist_neg[..bins].fill(0.0);
            ws.hist_n[..bins].fill(0);
            for &row in &ws.member[lo..hi] {
                let row = row as usize;
                let code = codes[row] as usize;
                ws.hist_pos[code] += ws.row_wpos[row];
                ws.hist_neg[code] += ws.row_wneg[row];
                ws.hist_n[code] += 1;
            }
            // Scan bin boundaries left to right.
            let mut left_counts = ClassCounts::new();
            let mut right_counts = *parent_counts;
            let mut left_samples = 0usize;
            for bin in 0..bins - 1 {
                left_counts.positive += ws.hist_pos[bin];
                left_counts.negative += ws.hist_neg[bin];
                right_counts.positive -= ws.hist_pos[bin];
                right_counts.negative -= ws.hist_neg[bin];
                left_samples += ws.hist_n[bin] as usize;
                let right_samples = len - left_samples;
                if left_samples < self.min_samples_leaf.max(1)
                    || right_samples < self.min_samples_leaf.max(1)
                {
                    continue;
                }
                let left_weight = left_counts.total();
                let right_weight = right_counts.total();
                if left_weight <= 0.0 || right_weight <= 0.0 {
                    continue;
                }
                let children =
                    children_impurity(&left_counts, &right_counts, total_weight, scale, self.criterion);
                let gain = parent_impurity - children;
                let better = best.as_ref().map_or(gain >= 0.0, |b| gain > b.gain);
                if better {
                    best = Some(Split {
                        feature,
                        threshold: binning.edge(feature, bin),
                        gain,
                        left_counts,
                        right_counts,
                        left_samples,
                        right_samples,
                        bin: Some(bin),
                    });
                }
            }
        }
        best
    }

    /// Partitions the node owning `[lo, hi)` by `split`, stably, in place.
    /// Returns `mid`: the left child owns `[lo, mid)`, the right child
    /// `[mid, hi)`, in every per-feature column (exact) or the membership
    /// buffer (histogram). Sort order within segments is preserved.
    pub(crate) fn partition(&mut self, lo: usize, hi: usize, split: &Split) -> usize {
        match &self.backend {
            Backend::Exact(_) => self.partition_exact(lo, hi, split),
            Backend::Histogram(binning) => {
                let binning = Arc::clone(binning);
                self.partition_histogram(&binning, lo, hi, split)
            }
        }
    }

    fn partition_exact(&mut self, lo: usize, hi: usize, split: &Split) -> usize {
        let n = self.n;
        let split_ci = self
            .candidates
            .iter()
            .position(|&f| f == split.feature)
            .expect("split feature is always a candidate");
        // Mark membership using the split feature's own segment.
        let ws = &mut *self.ws;
        let base = split_ci * n;
        let mut left_size = 0usize;
        for position in lo..hi {
            let row = ws.rows[base + position] as usize;
            let goes_left = ws.vals[base + position] <= split.threshold;
            ws.goes_left[row] = goes_left;
            left_size += usize::from(goes_left);
        }
        // Stable two-way partition of every candidate column's segment,
        // carrying the gathered (value, row, wpos, wneg) tuples along.
        for ci in 0..self.candidates.len() {
            let base = ci * n;
            let mut write = base + lo;
            let mut spill = 0usize;
            for position in base + lo..base + hi {
                let row = ws.rows[position];
                if ws.goes_left[row as usize] {
                    ws.rows[write] = row;
                    ws.vals[write] = ws.vals[position];
                    ws.wpos[write] = ws.wpos[position];
                    ws.wneg[write] = ws.wneg[position];
                    write += 1;
                } else {
                    ws.scratch_rows[spill] = row;
                    ws.scratch_vals[spill] = ws.vals[position];
                    ws.scratch_wpos[spill] = ws.wpos[position];
                    ws.scratch_wneg[spill] = ws.wneg[position];
                    spill += 1;
                }
            }
            ws.rows[write..base + hi].copy_from_slice(&ws.scratch_rows[..spill]);
            ws.vals[write..base + hi].copy_from_slice(&ws.scratch_vals[..spill]);
            ws.wpos[write..base + hi].copy_from_slice(&ws.scratch_wpos[..spill]);
            ws.wneg[write..base + hi].copy_from_slice(&ws.scratch_wneg[..spill]);
        }
        partition_member(ws, lo, hi);
        lo + left_size
    }

    fn partition_histogram(&mut self, binning: &Binning, lo: usize, hi: usize, split: &Split) -> usize {
        let codes = binning.codes(split.feature);
        let split_bin = split.bin.expect("histogram splits carry their bin") as u16;
        let ws = &mut *self.ws;
        for position in lo..hi {
            let row = ws.member[position];
            ws.goes_left[row as usize] = codes[row as usize] <= split_bin;
        }
        partition_member(ws, lo, hi)
    }
}

/// Inputs of one feature's exact boundary scan.
struct ScanArgs<'a> {
    vals: &'a [f64],
    wpos: &'a [f64],
    wneg: &'a [f64],
    parent_counts: &'a ClassCounts,
    parent_impurity: f64,
    total_weight: f64,
    scale: f64,
    criterion: SplitCriterion,
    min1: usize,
    feature: usize,
}

/// Scans one feature's sorted segment for the best boundary, updating the
/// running best across features. `ALL_FINITE` selects the fast loop
/// without per-boundary finiteness checks (sound whenever the segment's
/// endpoints are finite, because the segment is sorted).
fn scan_feature_exact<const ALL_FINITE: bool>(
    args: &ScanArgs<'_>,
    best: &mut Option<Split>,
    best_gain: &mut f64,
) {
    let len = args.vals.len();
    let min1 = args.min1;
    let mut left_pos = 0.0f64;
    let mut left_neg = 0.0f64;
    let mut right_pos = args.parent_counts.positive;
    let mut right_neg = args.parent_counts.negative;
    // Boundaries outside [min1 - 1, len - min1) can never satisfy
    // `min_samples_leaf`; accumulating the prefix separately keeps those
    // checks out of the hot loop entirely.
    for position in 0..min1 - 1 {
        left_pos += args.wpos[position];
        left_neg += args.wneg[position];
        right_pos -= args.wpos[position];
        right_neg -= args.wneg[position];
    }
    for position in min1 - 1..len - min1 {
        // Branch-free class accumulation: the inactive side of the
        // (wpos, wneg) pair is 0.0, and adding/subtracting 0.0 is bitwise
        // identity for these non-negative accumulators.
        left_pos += args.wpos[position];
        left_neg += args.wneg[position];
        right_pos -= args.wpos[position];
        right_neg -= args.wneg[position];
        let value = args.vals[position];
        let next_value = args.vals[position + 1];
        // Ties cannot split (and in the general path, NaN neighbours and
        // non-finite midpoints are rejected too).
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-aware on purpose
        if ALL_FINITE {
            if next_value == value {
                continue;
            }
        } else if !(next_value > value) || !value.is_finite() || !next_value.is_finite() {
            continue;
        }
        let left_counts = ClassCounts {
            negative: left_neg,
            positive: left_pos,
        };
        let right_counts = ClassCounts {
            negative: right_neg,
            positive: right_pos,
        };
        let left_weight = left_counts.total();
        let right_weight = right_counts.total();
        if left_weight <= 0.0 || right_weight <= 0.0 {
            continue;
        }
        let children = children_impurity(
            &left_counts,
            &right_counts,
            args.total_weight,
            args.scale,
            args.criterion,
        );
        let gain = args.parent_impurity - children;
        // Zero-gain splits are accepted when nothing better exists (see
        // the naive search for the rationale: XOR-like patterns and the
        // trigger-forcing loop need them). The first acceptance demands
        // `gain >= 0.0` (rounding can push gains an ulp below zero).
        let better = if best.is_none() {
            gain >= 0.0
        } else {
            gain > *best_gain
        };
        if better {
            *best_gain = gain;
            let left_samples = position + 1;
            *best = Some(Split {
                feature: args.feature,
                threshold: midpoint_threshold(value, next_value),
                gain,
                left_counts,
                right_counts,
                left_samples,
                right_samples: len - left_samples,
                bin: None,
            });
        }
    }
}

/// Resizes a workspace buffer without touching retained contents: a no-op
/// when the size already matches (the common case when one workspace is
/// reused across the trees of a forest), so per-tree setup avoids
/// re-zeroing hundreds of kilobytes.
fn resize_buffer<T: Clone>(buffer: &mut Vec<T>, len: usize, fill: T) {
    if buffer.len() != len {
        buffer.clear();
        buffer.resize(len, fill);
    }
}

/// Stably partitions the membership buffer's segment `[lo, hi)` by the
/// `goes_left` mask, preserving ascending row order on both sides; returns
/// the boundary position.
fn partition_member(ws: &mut SplitWorkspace, lo: usize, hi: usize) -> usize {
    let mut write = lo;
    let mut spill = 0usize;
    for position in lo..hi {
        let row = ws.member[position];
        if ws.goes_left[row as usize] {
            ws.member[write] = row;
            write += 1;
        } else {
            ws.scratch_rows[spill] = row;
            spill += 1;
        }
    }
    ws.member[write..hi].copy_from_slice(&ws.scratch_rows[..spill]);
    write
}
