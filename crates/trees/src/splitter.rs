//! Presorted and histogram split search over per-node segments.
//!
//! This module implements the production split strategies
//! ([`crate::SplitStrategy::Exact`] and
//! [`crate::SplitStrategy::Histogram`]). Both avoid the naive search's
//! per-node sort + gather by working over **dataset-level precomputed
//! views** (`Dataset::presort` / `Dataset::binning`) and a reusable
//! [`SplitWorkspace`]:
//!
//! * **Exact (presorted CART)** — at tree start the candidate features'
//!   sorted `(value, row)` columns are copied from the shared presort into
//!   the workspace. Each tree node owns one contiguous segment `[lo, hi)`
//!   of every column; splitting a node stably partitions its segment into
//!   the two children's segments, preserving sort order, so no node ever
//!   sorts anything. Scans are sequential over column-major buffers.
//! * **Histogram** — nodes own a segment of a single row-membership
//!   buffer; for each candidate feature the node accumulates a weighted
//!   class histogram over precomputed per-sample bin codes and considers
//!   only bin edges as thresholds.
//!
//! Class-weight bookkeeping is branchless: each gathered sample carries
//! its class code and weight, and scans accumulate `acc[class] += weight`
//! into per-class running totals. For two classes this produces bit-for-bit
//! the sums of the earlier `(weight-if-positive, weight-if-negative)` pair
//! scheme — skipping an inactive class's `+= 0.0` is a bitwise no-op for
//! these non-negative accumulators — while generalizing to any class
//! count.
//!
//! After the one-time workspace initialization, node expansion performs
//! **zero heap allocations**: segment partitioning writes through
//! preallocated scratch buffers and frontier bookkeeping stores plain
//! index ranges.

use crate::params::SplitCriterion;
use crate::split::{children_impurity_parts, gini_scale, impurity, midpoint_threshold, Split};
use std::sync::Arc;
use wdte_data::{total_of, Binning, ClassCounts, Label, Presort};

/// Reusable buffers for segment-based tree construction. Create once (or
/// reuse across trees via [`crate::DecisionTree::fit_weighted_with_workspace`])
/// and the builder resizes it as needed; steady-state node expansion
/// allocates nothing.
#[derive(Debug, Default)]
pub struct SplitWorkspace {
    /// Exact mode: `k × n` feature values, per-candidate-feature columns,
    /// each column segment-sorted. Histogram mode: unused.
    vals: Vec<f64>,
    /// Exact mode: `k × n` row ids parallel to `vals`. Histogram mode:
    /// unused.
    rows: Vec<u32>,
    /// Exact mode: `k × n` per-sample weights, parallel to `vals`; gathered
    /// once per tree so the scan reads sequentially.
    wgt: Vec<f64>,
    /// Exact mode: `k × n` per-sample class codes, parallel to `vals`.
    cls: Vec<u16>,
    /// Node membership buffer (`n` row ids, ascending within each node's
    /// segment — the same iteration order as the naive builder's index
    /// lists, which keeps weighted-count summation bit-identical).
    member: Vec<u32>,
    /// Row-indexed membership mask used while partitioning a node.
    goes_left: Vec<bool>,
    /// Partition scratch for the right-child run (values).
    scratch_vals: Vec<f64>,
    /// Partition scratch for the right-child run (row ids).
    scratch_rows: Vec<u32>,
    /// Partition scratch for the right-child run (weights).
    scratch_wgt: Vec<f64>,
    /// Partition scratch for the right-child run (class codes).
    scratch_cls: Vec<u16>,
    /// Histogram mode: per-(bin, class) weight, `num_classes`-strided,
    /// reused per feature.
    hist_w: Vec<f64>,
    /// Histogram mode: per-bin sample counts, reused per feature.
    hist_n: Vec<u32>,
    /// Per-class left-child weight accumulator, reused per scan.
    left_acc: Vec<f64>,
    /// Per-class right-child weight accumulator, reused per scan.
    right_acc: Vec<f64>,
}

impl SplitWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The shared per-dataset view a splitter searches over.
pub(crate) enum Backend {
    /// Presorted exact search.
    Exact(Arc<Presort>),
    /// Quantile-histogram search.
    Histogram(Arc<Binning>),
}

/// Segment-based split searcher; one per tree under construction.
pub(crate) struct NodeSplitter<'a> {
    backend: Backend,
    labels: &'a [Label],
    weights: &'a [f64],
    candidates: &'a [usize],
    criterion: SplitCriterion,
    min_samples_leaf: usize,
    num_classes: usize,
    n: usize,
    ws: &'a mut SplitWorkspace,
}

impl<'a> NodeSplitter<'a> {
    /// Prepares the workspace for a tree over `n` samples and hands back
    /// the splitter. The root node owns the full segment `[0, n)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        backend: Backend,
        labels: &'a [Label],
        weights: &'a [f64],
        candidates: &'a [usize],
        criterion: SplitCriterion,
        min_samples_leaf: usize,
        num_classes: usize,
        ws: &'a mut SplitWorkspace,
    ) -> Self {
        let n = labels.len();
        let k = candidates.len();
        let classes = num_classes.max(2);
        // Buffers are sized with `resize_buffer` (no re-zeroing when the
        // size is unchanged — every entry that is read is written first,
        // either here or during partitioning).
        resize_buffer(&mut ws.goes_left, n, false);
        resize_buffer(&mut ws.scratch_vals, n, 0.0);
        resize_buffer(&mut ws.scratch_rows, n, 0);
        resize_buffer(&mut ws.left_acc, classes, 0.0);
        resize_buffer(&mut ws.right_acc, classes, 0.0);
        ws.member.clear();
        ws.member.extend(0..n as u32);
        match &backend {
            Backend::Exact(presort) => {
                resize_buffer(&mut ws.vals, k * n, 0.0);
                resize_buffer(&mut ws.rows, k * n, 0);
                resize_buffer(&mut ws.wgt, k * n, 0.0);
                resize_buffer(&mut ws.cls, k * n, 0);
                resize_buffer(&mut ws.scratch_wgt, n, 0.0);
                resize_buffer(&mut ws.scratch_cls, n, 0);
                for (ci, &feature) in candidates.iter().enumerate() {
                    let base = ci * n;
                    ws.vals[base..base + n].copy_from_slice(presort.sorted_values(feature));
                    ws.rows[base..base + n].copy_from_slice(presort.sorted_rows(feature));
                    for position in 0..n {
                        let row = ws.rows[base + position] as usize;
                        ws.wgt[base + position] = weights[row];
                        ws.cls[base + position] = labels[row].index() as u16;
                    }
                }
            }
            Backend::Histogram(binning) => {
                let bins = binning.max_bins();
                resize_buffer(&mut ws.hist_w, bins * classes, 0.0);
                resize_buffer(&mut ws.hist_n, bins, 0);
            }
        }
        NodeSplitter {
            backend,
            labels,
            weights,
            candidates,
            criterion,
            min_samples_leaf,
            num_classes: classes,
            n,
            ws,
        }
    }

    /// The rows belonging to the node that owns segment `[lo, hi)`, in
    /// ascending row order (stable partitioning preserves it).
    #[inline]
    pub(crate) fn node_rows(&self, lo: usize, hi: usize) -> &[u32] {
        &self.ws.member[lo..hi]
    }

    /// Weighted class counts of a node, summed in ascending row order (the
    /// naive builder's order, for bit-identical results).
    pub(crate) fn counts(&self, lo: usize, hi: usize) -> ClassCounts {
        let mut counts = ClassCounts::with_classes(self.num_classes);
        for &row in self.node_rows(lo, hi) {
            let row = row as usize;
            counts.add(self.labels[row], self.weights[row]);
        }
        counts
    }

    /// Finds the best split of the node owning `[lo, hi)`; mirrors the
    /// acceptance rules of the naive reference search exactly (same
    /// thresholds, same `min_samples_leaf` handling, same zero-gain
    /// policy, same feature-order tie-breaking).
    pub(crate) fn best_split(
        &mut self,
        lo: usize,
        hi: usize,
        parent_counts: &ClassCounts,
    ) -> Option<Split> {
        if hi - lo < 2 * self.min_samples_leaf.max(1) {
            return None;
        }
        let parent_impurity = impurity(parent_counts, self.criterion);
        if parent_impurity <= 0.0 {
            return None; // already pure
        }
        let total_weight = parent_counts.total();
        if total_weight <= 0.0 {
            return None;
        }
        match &self.backend {
            Backend::Exact(_) => self.best_split_exact(lo, hi, parent_counts, parent_impurity),
            Backend::Histogram(binning) => {
                let binning = Arc::clone(binning);
                self.best_split_histogram(&binning, lo, hi, parent_counts, parent_impurity)
            }
        }
    }

    fn best_split_exact(
        &mut self,
        lo: usize,
        hi: usize,
        parent_counts: &ClassCounts,
        parent_impurity: f64,
    ) -> Option<Split> {
        let n = self.n;
        let len = hi - lo;
        let total_weight = parent_counts.total();
        let scale = gini_scale(total_weight);
        let min1 = self.min_samples_leaf.max(1);
        let parent = parent_counts.slice();
        let ws = &mut *self.ws;
        let mut best: Option<Split> = None;
        // Running best gain as a plain scalar so the hot loop compares
        // without touching the (large) `Split` struct.
        let mut best_gain = f64::NEG_INFINITY;
        for (ci, &feature) in self.candidates.iter().enumerate() {
            let base = ci * n;
            let vals = &ws.vals[base + lo..base + hi];
            let cls = &ws.cls[base + lo..base + hi];
            let wgt = &ws.wgt[base + lo..base + hi];
            if vals[len - 1] == vals[0] {
                continue; // constant within this node: no admissible boundary
            }
            ws.left_acc.fill(0.0);
            ws.right_acc.copy_from_slice(parent);
            // Sorted order puts -inf first and NaN/+inf last, so finite
            // endpoints prove the whole segment finite and the hot loop
            // can drop its per-boundary finiteness checks.
            let scan = ScanArgs {
                vals,
                cls,
                wgt,
                parent_impurity,
                total_weight,
                scale,
                criterion: self.criterion,
                min1,
                feature,
            };
            if vals[0].is_finite() && vals[len - 1].is_finite() {
                scan_feature_exact::<true>(
                    &scan,
                    &mut ws.left_acc,
                    &mut ws.right_acc,
                    &mut best,
                    &mut best_gain,
                );
            } else {
                scan_feature_exact::<false>(
                    &scan,
                    &mut ws.left_acc,
                    &mut ws.right_acc,
                    &mut best,
                    &mut best_gain,
                );
            }
        }
        best
    }

    fn best_split_histogram(
        &mut self,
        binning: &Binning,
        lo: usize,
        hi: usize,
        parent_counts: &ClassCounts,
        parent_impurity: f64,
    ) -> Option<Split> {
        let len = hi - lo;
        let total_weight = parent_counts.total();
        let scale = gini_scale(total_weight);
        let classes = self.num_classes;
        let mut best: Option<Split> = None;
        let ws = &mut *self.ws;
        for &feature in self.candidates {
            let bins = binning.num_bins(feature);
            if bins < 2 {
                continue; // constant feature
            }
            let codes = binning.codes(feature);
            // Accumulate the node's weighted class histogram (branch-free,
            // see the module docs).
            ws.hist_w[..bins * classes].fill(0.0);
            ws.hist_n[..bins].fill(0);
            for &row in &ws.member[lo..hi] {
                let row = row as usize;
                let code = codes[row] as usize;
                ws.hist_w[code * classes + self.labels[row].index()] += self.weights[row];
                ws.hist_n[code] += 1;
            }
            // Scan bin boundaries left to right.
            ws.left_acc.fill(0.0);
            ws.right_acc.copy_from_slice(parent_counts.slice());
            let mut left_samples = 0usize;
            for bin in 0..bins - 1 {
                for class in 0..classes {
                    let w = ws.hist_w[bin * classes + class];
                    ws.left_acc[class] += w;
                    ws.right_acc[class] -= w;
                }
                left_samples += ws.hist_n[bin] as usize;
                let right_samples = len - left_samples;
                if left_samples < self.min_samples_leaf.max(1)
                    || right_samples < self.min_samples_leaf.max(1)
                {
                    continue;
                }
                let left_weight = total_of(&ws.left_acc);
                let right_weight = total_of(&ws.right_acc);
                if left_weight <= 0.0 || right_weight <= 0.0 {
                    continue;
                }
                let children = children_impurity_parts(
                    &ws.left_acc,
                    &ws.right_acc,
                    total_weight,
                    scale,
                    self.criterion,
                );
                let gain = parent_impurity - children;
                let better = best.as_ref().map_or(gain >= 0.0, |b| gain > b.gain);
                if better {
                    best = Some(Split {
                        feature,
                        threshold: binning.edge(feature, bin),
                        gain,
                        left_counts: ClassCounts::from_slice(&ws.left_acc),
                        right_counts: ClassCounts::from_slice(&ws.right_acc),
                        left_samples,
                        right_samples,
                        bin: Some(bin),
                    });
                }
            }
        }
        best
    }

    /// Partitions the node owning `[lo, hi)` by `split`, stably, in place.
    /// Returns `mid`: the left child owns `[lo, mid)`, the right child
    /// `[mid, hi)`, in every per-feature column (exact) or the membership
    /// buffer (histogram). Sort order within segments is preserved.
    pub(crate) fn partition(&mut self, lo: usize, hi: usize, split: &Split) -> usize {
        match &self.backend {
            Backend::Exact(_) => self.partition_exact(lo, hi, split),
            Backend::Histogram(binning) => {
                let binning = Arc::clone(binning);
                self.partition_histogram(&binning, lo, hi, split)
            }
        }
    }

    fn partition_exact(&mut self, lo: usize, hi: usize, split: &Split) -> usize {
        let n = self.n;
        let split_ci = self
            .candidates
            .iter()
            .position(|&f| f == split.feature)
            .expect("split feature is always a candidate");
        // Mark membership using the split feature's own segment.
        let ws = &mut *self.ws;
        let base = split_ci * n;
        let mut left_size = 0usize;
        for position in lo..hi {
            let row = ws.rows[base + position] as usize;
            let goes_left = ws.vals[base + position] <= split.threshold;
            ws.goes_left[row] = goes_left;
            left_size += usize::from(goes_left);
        }
        // Stable two-way partition of every candidate column's segment,
        // carrying the gathered (value, row, weight, class) tuples along.
        for ci in 0..self.candidates.len() {
            let base = ci * n;
            let mut write = base + lo;
            let mut spill = 0usize;
            for position in base + lo..base + hi {
                let row = ws.rows[position];
                if ws.goes_left[row as usize] {
                    ws.rows[write] = row;
                    ws.vals[write] = ws.vals[position];
                    ws.wgt[write] = ws.wgt[position];
                    ws.cls[write] = ws.cls[position];
                    write += 1;
                } else {
                    ws.scratch_rows[spill] = row;
                    ws.scratch_vals[spill] = ws.vals[position];
                    ws.scratch_wgt[spill] = ws.wgt[position];
                    ws.scratch_cls[spill] = ws.cls[position];
                    spill += 1;
                }
            }
            ws.rows[write..base + hi].copy_from_slice(&ws.scratch_rows[..spill]);
            ws.vals[write..base + hi].copy_from_slice(&ws.scratch_vals[..spill]);
            ws.wgt[write..base + hi].copy_from_slice(&ws.scratch_wgt[..spill]);
            ws.cls[write..base + hi].copy_from_slice(&ws.scratch_cls[..spill]);
        }
        partition_member(ws, lo, hi);
        lo + left_size
    }

    fn partition_histogram(&mut self, binning: &Binning, lo: usize, hi: usize, split: &Split) -> usize {
        let codes = binning.codes(split.feature);
        let split_bin = split.bin.expect("histogram splits carry their bin") as u16;
        let ws = &mut *self.ws;
        for position in lo..hi {
            let row = ws.member[position];
            ws.goes_left[row as usize] = codes[row as usize] <= split_bin;
        }
        partition_member(ws, lo, hi)
    }
}

/// Inputs of one feature's exact boundary scan.
struct ScanArgs<'a> {
    vals: &'a [f64],
    cls: &'a [u16],
    wgt: &'a [f64],
    parent_impurity: f64,
    total_weight: f64,
    scale: f64,
    criterion: SplitCriterion,
    min1: usize,
    feature: usize,
}

/// Scans one feature's sorted segment for the best boundary, updating the
/// running best across features. `left`/`right` are the per-class weight
/// accumulators, pre-seeded to zero and the parent counts respectively.
/// `ALL_FINITE` selects the fast loop without per-boundary finiteness
/// checks (sound whenever the segment's endpoints are finite, because the
/// segment is sorted).
fn scan_feature_exact<const ALL_FINITE: bool>(
    args: &ScanArgs<'_>,
    left: &mut [f64],
    right: &mut [f64],
    best: &mut Option<Split>,
    best_gain: &mut f64,
) {
    let len = args.vals.len();
    let min1 = args.min1;
    // Boundaries outside [min1 - 1, len - min1) can never satisfy
    // `min_samples_leaf`; accumulating the prefix separately keeps those
    // checks out of the hot loop entirely.
    for position in 0..min1 - 1 {
        let class = args.cls[position] as usize;
        let weight = args.wgt[position];
        left[class] += weight;
        right[class] -= weight;
    }
    for position in min1 - 1..len - min1 {
        // Branch-free class accumulation: only the sample's own class cell
        // moves, which is bitwise identical to also adding 0.0 to every
        // other (non-negative) accumulator.
        let class = args.cls[position] as usize;
        let weight = args.wgt[position];
        left[class] += weight;
        right[class] -= weight;
        let value = args.vals[position];
        let next_value = args.vals[position + 1];
        // Ties cannot split (and in the general path, NaN neighbours and
        // non-finite midpoints are rejected too).
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-aware on purpose
        if ALL_FINITE {
            if next_value == value {
                continue;
            }
        } else if !(next_value > value) || !value.is_finite() || !next_value.is_finite() {
            continue;
        }
        let left_weight = total_of(left);
        let right_weight = total_of(right);
        if left_weight <= 0.0 || right_weight <= 0.0 {
            continue;
        }
        let children =
            children_impurity_parts(left, right, args.total_weight, args.scale, args.criterion);
        let gain = args.parent_impurity - children;
        // Zero-gain splits are accepted when nothing better exists (see
        // the naive search for the rationale: XOR-like patterns and the
        // trigger-forcing loop need them). The first acceptance demands
        // `gain >= 0.0` (rounding can push gains an ulp below zero).
        let better = if best.is_none() {
            gain >= 0.0
        } else {
            gain > *best_gain
        };
        if better {
            *best_gain = gain;
            let left_samples = position + 1;
            *best = Some(Split {
                feature: args.feature,
                threshold: midpoint_threshold(value, next_value),
                gain,
                left_counts: ClassCounts::from_slice(left),
                right_counts: ClassCounts::from_slice(right),
                left_samples,
                right_samples: len - left_samples,
                bin: None,
            });
        }
    }
}

/// Resizes a workspace buffer without touching retained contents: a no-op
/// when the size already matches (the common case when one workspace is
/// reused across the trees of a forest), so per-tree setup avoids
/// re-zeroing hundreds of kilobytes.
fn resize_buffer<T: Clone>(buffer: &mut Vec<T>, len: usize, fill: T) {
    if buffer.len() != len {
        buffer.clear();
        buffer.resize(len, fill);
    }
}

/// Stably partitions the membership buffer's segment `[lo, hi)` by the
/// `goes_left` mask, preserving ascending row order on both sides; returns
/// the boundary position.
fn partition_member(ws: &mut SplitWorkspace, lo: usize, hi: usize) -> usize {
    let mut write = lo;
    let mut spill = 0usize;
    for position in lo..hi {
        let row = ws.member[position];
        if ws.goes_left[row as usize] {
            ws.member[write] = row;
            write += 1;
        } else {
            ws.scratch_rows[spill] = row;
            spill += 1;
        }
    }
    ws.member[write..hi].copy_from_slice(&ws.scratch_rows[..spill]);
    write
}
