//! # wdte-trees
//!
//! Learning substrate for the *Watermarking Decision Tree Ensembles*
//! reproduction: weighted CART decision trees, random forests *without*
//! bootstrap exposing per-tree predictions, and grid-search hyper-parameter
//! tuning with stratified cross validation.
//!
//! The watermarking scheme (`wdte-core`) drives this crate through sample
//! weights: Algorithm 1 repeatedly retrains forests while increasing the
//! weights of trigger-set instances until every tree exhibits the required
//! behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forest;
pub mod grid;
pub mod infer;
pub mod params;
pub mod split;
pub mod splitter;
pub mod tree;

pub use forest::{derive_seeds, rng_from_seed, RandomForest};
pub use grid::{GridPointResult, GridSearch, GridSearchResult, ParamGrid};
pub use infer::{BatchPredictions, CompiledForest, InferenceKernel, Kernel, ResolvedKernel};
pub use params::{FeatureSubset, ForestParams, SplitCriterion, SplitStrategy, TreeParams};
pub use split::{best_split, impurity, Split};
pub use splitter::SplitWorkspace;
pub use tree::{DecisionTree, LeafRegion, Node, TreeStats};

/// Commonly used types, re-exported for `use wdte_trees::prelude::*`.
pub mod prelude {
    pub use crate::forest::RandomForest;
    pub use crate::grid::{GridSearch, GridSearchResult, ParamGrid};
    pub use crate::infer::{BatchPredictions, CompiledForest, InferenceKernel, Kernel, ResolvedKernel};
    pub use crate::params::{FeatureSubset, ForestParams, SplitCriterion, SplitStrategy, TreeParams};
    pub use crate::splitter::SplitWorkspace;
    pub use crate::tree::{DecisionTree, LeafRegion, Node, TreeStats};
}
