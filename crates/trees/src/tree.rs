//! Binary decision trees for classification (CART-style), grown best-first
//! with support for sample weights, depth limits and leaf-count limits.

use crate::params::{SplitStrategy, TreeParams};
use crate::split::{best_split, Split};
use crate::splitter::{Backend, NodeSplitter, SplitWorkspace};
use serde::{DeError, Deserialize, Serialize, Value};
use wdte_data::{ClassCounts, Dataset, DenseMatrix, Label};

/// A node of a decision tree, stored in an arena (`Vec<Node>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A leaf predicting `label`; `counts` records the weighted class counts
    /// of the training samples that reached it.
    Leaf {
        /// Predicted label.
        label: Label,
        /// Weighted training class counts in this leaf.
        counts: ClassCounts,
    },
    /// An internal node testing `x[feature] <= threshold`; instances
    /// satisfying the test descend into `left`, the rest into `right`.
    Internal {
        /// Feature index tested by this node.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Arena index of the left child (test satisfied).
        left: usize,
        /// Arena index of the right child (test not satisfied).
        right: usize,
    },
}

/// A trained binary decision tree.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

/// Deserialization validates the arena before constructing the tree, so a
/// corrupted or hostile serialized model surfaces as an error instead of
/// an out-of-bounds panic, an infinite traversal loop, or a stack
/// overflow at prediction time.
impl Deserialize for DecisionTree {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value.as_map().ok_or_else(|| DeError::expected("map", "DecisionTree"))?;
        let nodes: Vec<Node> = Vec::from_value(serde::map_get(entries, "nodes")?)?;
        let num_features = usize::from_value(serde::map_get(entries, "num_features")?)?;
        validate_arena(&nodes, num_features)
            .map_err(|detail| DeError::new(format!("invalid DecisionTree: {detail}")))?;
        Ok(DecisionTree { nodes, num_features })
    }
}

/// Deepest tree accepted from a serialized artefact. Trees trained in this
/// workspace stay orders of magnitude below this (the `Adjust(H)` heuristic
/// caps depth near the ensemble mean), while the bound keeps hostile
/// deep-chain artefacts from later overflowing the stack in recursive
/// consumers (`depth_of`, `leaf_regions`, `CompiledForest::compile`).
pub const MAX_DESERIALIZED_DEPTH: usize = 2048;

/// Checks that `nodes` is a well-formed tree rooted at index 0: child and
/// feature indices in range, every node reachable from the root exactly
/// once (no shared subtrees, no cycles, no orphans), depth within
/// [`MAX_DESERIALIZED_DEPTH`]. Uses an explicit stack, so hostile input
/// cannot overflow the call stack here either.
fn validate_arena(nodes: &[Node], num_features: usize) -> Result<(), String> {
    if nodes.is_empty() {
        return Err("a tree needs at least one node".to_string());
    }
    let mut visited = vec![false; nodes.len()];
    let mut stack = vec![(0usize, 0usize)];
    let mut reached = 0usize;
    while let Some((index, depth)) = stack.pop() {
        if visited[index] {
            return Err(format!("node {index} is reachable twice (shared child or cycle)"));
        }
        if depth > MAX_DESERIALIZED_DEPTH {
            return Err(format!("tree is deeper than {MAX_DESERIALIZED_DEPTH} levels"));
        }
        visited[index] = true;
        reached += 1;
        if let Node::Internal {
            feature, left, right, ..
        } = &nodes[index]
        {
            if *feature >= num_features {
                return Err(format!(
                    "node {index} tests feature {feature} but the tree has {num_features}"
                ));
            }
            for child in [*left, *right] {
                if child >= nodes.len() {
                    return Err(format!(
                        "node {index} has child {child} out of range for {} nodes",
                        nodes.len()
                    ));
                }
                stack.push((child, depth + 1));
            }
        }
    }
    if reached != nodes.len() {
        return Err(format!(
            "{} nodes are unreachable from the root",
            nodes.len() - reached
        ));
    }
    Ok(())
}

/// Structural statistics of a single tree; the quantities the
/// watermark-detection attacker inspects (Table 2) and the hyper-parameter
/// adjustment heuristic averages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Depth of the tree (a root-only tree has depth 0).
    pub depth: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Total number of nodes.
    pub nodes: usize,
}

impl DecisionTree {
    /// Trains a tree on the given dataset with unit sample weights.
    pub fn fit(dataset: &Dataset, params: &TreeParams) -> Self {
        let weights = vec![1.0; dataset.len()];
        Self::fit_weighted(dataset, &weights, None, params)
    }

    /// Trains a tree with explicit per-sample weights and an optional
    /// restriction of the features the tree may split on (the per-tree
    /// feature subset of a random forest without bootstrap).
    ///
    /// The split search algorithm is selected by `params.strategy`; the
    /// default presorted [`SplitStrategy::Exact`] reuses the dataset-level
    /// presort cache, so repeatedly retraining on the same dataset (the
    /// watermark embedding loop) never re-sorts feature columns.
    ///
    /// # Panics
    /// Panics if `weights.len() != dataset.len()` or the dataset is empty.
    pub fn fit_weighted(
        dataset: &Dataset,
        weights: &[f64],
        allowed_features: Option<&[usize]>,
        params: &TreeParams,
    ) -> Self {
        thread_local! {
            /// Per-thread workspace reused by every tree trained on this
            /// thread: all trees of a worker's batch during parallel
            /// forest training, and — when training runs on a persistent
            /// thread (serial mode, or a caller looping `fit_weighted` as
            /// Algorithm 1 does) — every retraining round too, so
            /// steady-state training performs no per-tree buffer
            /// allocations.
            static TREE_WORKSPACE: std::cell::RefCell<SplitWorkspace> =
                std::cell::RefCell::new(SplitWorkspace::new());
        }
        TREE_WORKSPACE.with(|workspace| {
            Self::fit_weighted_with_workspace(
                dataset,
                weights,
                allowed_features,
                params,
                &mut workspace.borrow_mut(),
            )
        })
    }

    /// Like [`DecisionTree::fit_weighted`], but reuses a caller-provided
    /// [`SplitWorkspace`] so that training many trees in a loop performs
    /// no per-tree buffer allocations.
    pub fn fit_weighted_with_workspace(
        dataset: &Dataset,
        weights: &[f64],
        allowed_features: Option<&[usize]>,
        params: &TreeParams,
        workspace: &mut SplitWorkspace,
    ) -> Self {
        assert_eq!(weights.len(), dataset.len(), "one weight per sample required");
        assert!(!dataset.is_empty(), "cannot train a tree on an empty dataset");
        let all_features: Vec<usize> = (0..dataset.num_features()).collect();
        let candidate_features: &[usize] = allowed_features.unwrap_or(&all_features);
        assert!(
            !candidate_features.is_empty(),
            "at least one candidate feature required"
        );

        let labels = dataset.labels();
        let num_classes = dataset.num_classes();
        let nodes = match params.strategy {
            SplitStrategy::ExactNaive => grow_naive(
                dataset.features(),
                labels,
                weights,
                candidate_features,
                params,
                num_classes,
            ),
            SplitStrategy::Exact => {
                let backend = Backend::Exact(dataset.presort());
                grow_segmented(
                    backend,
                    labels,
                    weights,
                    candidate_features,
                    params,
                    num_classes,
                    workspace,
                )
            }
            SplitStrategy::Histogram { bins } => {
                let backend = Backend::Histogram(dataset.binning(bins.clamp(2, u16::MAX as usize)));
                grow_segmented(
                    backend,
                    labels,
                    weights,
                    candidate_features,
                    params,
                    num_classes,
                    workspace,
                )
            }
        };
        DecisionTree {
            nodes,
            num_features: dataset.num_features(),
        }
    }

    /// Number of features of the training space.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Borrow of the node arena; index 0 is the root.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Arena index of the root node.
    pub fn root(&self) -> usize {
        0
    }

    /// Predicts the label of a single instance.
    ///
    /// # Panics
    /// Panics if `instance.len() < num_features()`.
    pub fn predict(&self, instance: &[f64]) -> Label {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { label, .. } => return *label,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if instance[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts every instance of a dataset.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Vec<Label> {
        dataset.iter().map(|(row, _)| self.predict(row)).collect()
    }

    /// Fraction of dataset instances predicted correctly.
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let correct = dataset.iter().filter(|(row, label)| self.predict(row) == *label).count();
        correct as f64 / dataset.len() as f64
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        self.depth_of(0)
    }

    fn depth_of(&self, node: usize) -> usize {
        match &self.nodes[node] {
            Node::Leaf { .. } => 0,
            Node::Internal { left, right, .. } => 1 + self.depth_of(*left).max(self.depth_of(*right)),
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Structural statistics of the tree.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            depth: self.depth(),
            leaves: self.num_leaves(),
            nodes: self.nodes.len(),
        }
    }

    /// Enumerates, for every leaf, the axis-aligned region of the input
    /// space routed to it, as per-feature `(lower, upper]`-style bounds
    /// (`lower < x <= upper` for the features actually tested on the path;
    /// untested features are unconstrained `(-inf, +inf)`), together with
    /// the leaf's predicted label.
    ///
    /// This is the geometric view the forgery solver (`wdte-solver`)
    /// operates on.
    pub fn leaf_regions(&self) -> Vec<LeafRegion> {
        let mut regions = Vec::with_capacity(self.num_leaves());
        let unconstrained = vec![(f64::NEG_INFINITY, f64::INFINITY); self.num_features];
        self.collect_regions(0, unconstrained, &mut regions);
        regions
    }

    fn collect_regions(&self, node: usize, bounds: Vec<(f64, f64)>, out: &mut Vec<LeafRegion>) {
        match &self.nodes[node] {
            Node::Leaf { label, counts } => {
                out.push(LeafRegion {
                    bounds,
                    label: *label,
                    counts: counts.clone(),
                });
            }
            Node::Internal {
                feature,
                threshold,
                left,
                right,
            } => {
                // Left branch: x[feature] <= threshold → tighten the upper bound.
                let mut left_bounds = bounds.clone();
                if *threshold < left_bounds[*feature].1 {
                    left_bounds[*feature].1 = *threshold;
                }
                self.collect_regions(*left, left_bounds, out);
                // Right branch: x[feature] > threshold → tighten the lower bound.
                let mut right_bounds = bounds;
                if *threshold > right_bounds[*feature].0 {
                    right_bounds[*feature].0 = *threshold;
                }
                self.collect_regions(*right, right_bounds, out);
            }
        }
    }

    /// Builds a tree directly from an arena of nodes. Used by the
    /// 3SAT→ensemble reduction, which constructs trees syntactically rather
    /// than by training.
    ///
    /// # Panics
    /// Panics if the arena is empty or a child index is out of range.
    pub fn from_nodes(nodes: Vec<Node>, num_features: usize) -> Self {
        assert!(!nodes.is_empty(), "a tree needs at least one node");
        for node in &nodes {
            if let Node::Internal {
                left, right, feature, ..
            } = node
            {
                assert!(
                    *left < nodes.len() && *right < nodes.len(),
                    "child index out of range"
                );
                assert!(*feature < num_features, "feature index out of range");
            }
        }
        DecisionTree { nodes, num_features }
    }
}

/// Axis-aligned region of the input space routed to a single leaf.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafRegion {
    /// Per-feature bounds `(lower, upper)`: the leaf is reached iff
    /// `lower < x[f] <= upper` for every tested feature (bounds are
    /// infinite for untested features).
    pub bounds: Vec<(f64, f64)>,
    /// Label predicted by the leaf.
    pub label: Label,
    /// Weighted training class counts of the leaf.
    pub counts: ClassCounts,
}

/// Grows a tree with the naive reference search
/// ([`SplitStrategy::ExactNaive`]): per-node index vectors, per-node
/// column gather + sort. Kept as the parity oracle and benchmark baseline
/// for the segment-based strategies.
fn grow_naive(
    features: &DenseMatrix,
    labels: &[Label],
    weights: &[f64],
    candidate_features: &[usize],
    params: &TreeParams,
    num_classes: usize,
) -> Vec<Node> {
    let max_leaves = params.max_leaves.unwrap_or(usize::MAX).max(1);
    let mut builder = NaiveBuilder {
        nodes: Vec::new(),
        frontier: Vec::new(),
        features,
        labels,
        weights,
        candidate_features,
        params,
        num_classes,
    };
    let root_indices: Vec<usize> = (0..labels.len()).collect();
    builder.push_leaf(root_indices, 0);
    let mut leaves = 1usize;
    // Best-first growth: repeatedly split the frontier leaf with the
    // largest impurity decrease until the leaf budget is exhausted or no
    // splittable leaf remains.
    while leaves < max_leaves {
        let Some(best_index) = builder.best_frontier_entry() else {
            break;
        };
        let entry = builder.frontier.swap_remove(best_index);
        builder.apply_split(entry);
        leaves += 1;
    }
    builder.nodes
}

/// Grows a tree over per-node segments of presorted columns (exact) or a
/// membership buffer (histogram); no per-node sorting, no allocations in
/// steady state.
fn grow_segmented(
    backend: Backend,
    labels: &[Label],
    weights: &[f64],
    candidate_features: &[usize],
    params: &TreeParams,
    num_classes: usize,
    workspace: &mut SplitWorkspace,
) -> Vec<Node> {
    let max_leaves = params.max_leaves.unwrap_or(usize::MAX).max(1);
    let splitter = NodeSplitter::new(
        backend,
        labels,
        weights,
        candidate_features,
        params.criterion,
        params.min_samples_leaf,
        num_classes,
        workspace,
    );
    let mut builder = SegmentBuilder {
        nodes: Vec::new(),
        frontier: Vec::new(),
        splitter,
        params,
    };
    builder.push_leaf(0, labels.len(), 0);
    let mut leaves = 1usize;
    while leaves < max_leaves {
        let Some(best_index) = builder.best_frontier_entry() else {
            break;
        };
        let entry = builder.frontier.swap_remove(best_index);
        builder.apply_split(entry);
        leaves += 1;
    }
    builder.nodes
}

/// A frontier leaf awaiting a possible split during best-first growth
/// (naive builder: owns its index list).
struct FrontierEntry {
    node_slot: usize,
    indices: Vec<usize>,
    depth: usize,
    split: Option<Split>,
}

struct NaiveBuilder<'a> {
    nodes: Vec<Node>,
    frontier: Vec<FrontierEntry>,
    features: &'a DenseMatrix,
    labels: &'a [Label],
    weights: &'a [f64],
    candidate_features: &'a [usize],
    params: &'a TreeParams,
    num_classes: usize,
}

impl<'a> NaiveBuilder<'a> {
    /// Creates a leaf node for `indices`, evaluates its best split, and adds
    /// it to the frontier (if it is allowed to be split later).
    fn push_leaf(&mut self, indices: Vec<usize>, depth: usize) -> usize {
        let mut counts = ClassCounts::with_classes(self.num_classes);
        for &i in &indices {
            counts.add(self.labels[i], self.weights[i]);
        }
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf {
            label: counts.majority(),
            counts,
        });

        let depth_allows_split = self.params.max_depth.is_none_or(|max| depth < max);
        let size_allows_split = indices.len() >= self.params.min_samples_split.max(2);
        if depth_allows_split && size_allows_split {
            let split = best_split(
                self.features,
                self.labels,
                self.weights,
                &indices,
                self.candidate_features,
                self.params.criterion,
                self.params.min_samples_leaf,
                self.num_classes,
            );
            if split.is_some() {
                self.frontier.push(FrontierEntry {
                    node_slot: slot,
                    indices,
                    depth,
                    split,
                });
            }
        }
        slot
    }

    /// Index of the frontier entry with the highest gain, if any.
    fn best_frontier_entry(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (index, entry) in self.frontier.iter().enumerate() {
            let gain = entry.split.as_ref().map(|s| s.gain).unwrap_or(f64::NEG_INFINITY);
            if best.is_none_or(|(_, best_gain)| gain > best_gain) {
                best = Some((index, gain));
            }
        }
        best.map(|(index, _)| index)
    }

    /// Turns the frontier leaf into an internal node and pushes its two
    /// children as new leaves.
    fn apply_split(&mut self, entry: FrontierEntry) {
        let split = entry.split.expect("frontier entries always carry a split");
        let (mut left_indices, mut right_indices) = (
            Vec::with_capacity(split.left_samples),
            Vec::with_capacity(split.right_samples),
        );
        for &i in &entry.indices {
            if self.features.value(i, split.feature) <= split.threshold {
                left_indices.push(i);
            } else {
                right_indices.push(i);
            }
        }
        let left = self.push_leaf(left_indices, entry.depth + 1);
        let right = self.push_leaf(right_indices, entry.depth + 1);
        self.nodes[entry.node_slot] = Node::Internal {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
    }
}

/// A frontier leaf in the segment-based builder: plain `[lo, hi)` range,
/// no owned index list. Only splittable leaves enter the frontier.
struct SegmentEntry {
    node_slot: usize,
    lo: usize,
    hi: usize,
    depth: usize,
    split: Split,
}

struct SegmentBuilder<'a> {
    nodes: Vec<Node>,
    frontier: Vec<SegmentEntry>,
    splitter: NodeSplitter<'a>,
    params: &'a TreeParams,
}

impl<'a> SegmentBuilder<'a> {
    /// Creates a leaf node for the segment `[lo, hi)`, evaluates its best
    /// split, and adds it to the frontier if it can be split later.
    fn push_leaf(&mut self, lo: usize, hi: usize, depth: usize) -> usize {
        let counts = self.splitter.counts(lo, hi);
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf {
            label: counts.majority(),
            counts: counts.clone(),
        });

        let depth_allows_split = self.params.max_depth.is_none_or(|max| depth < max);
        let size_allows_split = hi - lo >= self.params.min_samples_split.max(2);
        if depth_allows_split && size_allows_split {
            if let Some(split) = self.splitter.best_split(lo, hi, &counts) {
                self.frontier.push(SegmentEntry {
                    node_slot: slot,
                    lo,
                    hi,
                    depth,
                    split,
                });
            }
        }
        slot
    }

    /// Index of the frontier entry with the highest gain, if any.
    fn best_frontier_entry(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (index, entry) in self.frontier.iter().enumerate() {
            if best.is_none_or(|(_, best_gain)| entry.split.gain > best_gain) {
                best = Some((index, entry.split.gain));
            }
        }
        best.map(|(index, _)| index)
    }

    /// Turns the frontier leaf into an internal node: partitions the
    /// segment in place and pushes the two child segments as new leaves.
    fn apply_split(&mut self, entry: SegmentEntry) {
        let mid = self.splitter.partition(entry.lo, entry.hi, &entry.split);
        debug_assert_eq!(
            mid - entry.lo,
            entry.split.left_samples,
            "partition matches split"
        );
        let left = self.push_leaf(entry.lo, mid, entry.depth + 1);
        let right = self.push_leaf(mid, entry.hi, entry.depth + 1);
        self.nodes[entry.node_slot] = Node::Internal {
            feature: entry.split.feature,
            threshold: entry.split.threshold,
            left,
            right,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;

    fn xor_dataset() -> Dataset {
        // XOR-like pattern that a depth-2 tree can fit but a stump cannot.
        let rows = vec![
            vec![0.1, 0.1],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
            vec![0.9, 0.9],
            vec![0.2, 0.2],
            vec![0.2, 0.8],
            vec![0.8, 0.2],
            vec![0.8, 0.8],
        ];
        let labels = vec![
            Label::Negative,
            Label::Positive,
            Label::Positive,
            Label::Negative,
            Label::Negative,
            Label::Positive,
            Label::Positive,
            Label::Negative,
        ];
        Dataset::new("xor", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn fits_xor_with_enough_depth() {
        let dataset = xor_dataset();
        let tree = DecisionTree::fit(&dataset, &TreeParams::default());
        assert_eq!(tree.accuracy(&dataset), 1.0);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let dataset = xor_dataset();
        let tree = DecisionTree::fit(&dataset, &TreeParams::with_max_depth(1));
        assert!(tree.depth() <= 1);
        assert!(tree.accuracy(&dataset) < 1.0);
    }

    #[test]
    fn leaf_limit_is_respected() {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.5)
            .generate(&mut SmallRng::seed_from_u64(1));
        let params = TreeParams {
            max_leaves: Some(4),
            ..TreeParams::default()
        };
        let tree = DecisionTree::fit(&dataset, &params);
        assert!(tree.num_leaves() <= 4);
        let unconstrained = DecisionTree::fit(&dataset, &TreeParams::default());
        assert!(unconstrained.num_leaves() >= tree.num_leaves());
    }

    #[test]
    fn single_class_dataset_yields_single_leaf() {
        let rows = vec![vec![0.0], vec![0.5], vec![1.0]];
        let labels = vec![Label::Positive; 3];
        let dataset = Dataset::new("pure", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap();
        let tree = DecisionTree::fit(&dataset, &TreeParams::default());
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[0.7]), Label::Positive);
    }

    #[test]
    fn sample_weights_can_flip_a_leaf_prediction() {
        // Two overlapping points with contradicting labels: the heavier one
        // must win the leaf majority.
        let rows = vec![vec![0.5], vec![0.5]];
        let labels = vec![Label::Positive, Label::Negative];
        let dataset = Dataset::new("tie", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap();
        let light = DecisionTree::fit_weighted(&dataset, &[1.0, 1.0], None, &TreeParams::default());
        assert_eq!(light.predict(&[0.5]), Label::Negative); // tie-break
        let heavy = DecisionTree::fit_weighted(&dataset, &[10.0, 1.0], None, &TreeParams::default());
        assert_eq!(heavy.predict(&[0.5]), Label::Positive);
    }

    #[test]
    fn restricted_feature_set_is_honoured() {
        let dataset = xor_dataset();
        // Only feature 0 available: XOR cannot be solved, and no split on
        // feature 1 may appear in the tree.
        let tree = DecisionTree::fit_weighted(
            &dataset,
            &vec![1.0; dataset.len()],
            Some(&[0]),
            &TreeParams::default(),
        );
        for node in tree.nodes() {
            if let Node::Internal { feature, .. } = node {
                assert_eq!(*feature, 0);
            }
        }
        assert!(tree.accuracy(&dataset) < 1.0);
    }

    #[test]
    fn stats_are_consistent_with_structure() {
        let dataset = xor_dataset();
        let tree = DecisionTree::fit(&dataset, &TreeParams::default());
        let stats = tree.stats();
        assert_eq!(stats.leaves, tree.num_leaves());
        assert_eq!(stats.depth, tree.depth());
        assert_eq!(stats.nodes, tree.nodes().len());
        // A binary tree with L leaves has exactly 2L - 1 nodes.
        assert_eq!(stats.nodes, 2 * stats.leaves - 1);
    }

    #[test]
    fn leaf_regions_cover_training_points_consistently() {
        let dataset = xor_dataset();
        let tree = DecisionTree::fit(&dataset, &TreeParams::default());
        let regions = tree.leaf_regions();
        assert_eq!(regions.len(), tree.num_leaves());
        // Every training instance must fall in exactly one region, and that
        // region's label must equal the tree prediction.
        for (row, _) in dataset.iter() {
            let mut matches = 0;
            for region in &regions {
                let inside = region
                    .bounds
                    .iter()
                    .enumerate()
                    .all(|(f, &(lo, hi))| row[f] > lo && row[f] <= hi);
                if inside {
                    matches += 1;
                    assert_eq!(region.label, tree.predict(row));
                }
            }
            assert_eq!(matches, 1, "each instance must fall in exactly one leaf region");
        }
    }

    #[test]
    fn from_nodes_builds_a_manual_tree() {
        // x[0] <= 0.5 ? Negative : Positive
        let nodes = vec![
            Node::Internal {
                feature: 0,
                threshold: 0.5,
                left: 1,
                right: 2,
            },
            Node::Leaf {
                label: Label::Negative,
                counts: ClassCounts::new(),
            },
            Node::Leaf {
                label: Label::Positive,
                counts: ClassCounts::new(),
            },
        ];
        let tree = DecisionTree::from_nodes(nodes, 1);
        assert_eq!(tree.predict(&[0.3]), Label::Negative);
        assert_eq!(tree.predict(&[0.7]), Label::Positive);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "child index out of range")]
    fn from_nodes_validates_children() {
        let nodes = vec![Node::Internal {
            feature: 0,
            threshold: 0.5,
            left: 5,
            right: 6,
        }];
        DecisionTree::from_nodes(nodes, 1);
    }

    #[test]
    fn serde_round_trip() {
        let dataset = xor_dataset();
        let tree = DecisionTree::fit(&dataset, &TreeParams::default());
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
    }
}
