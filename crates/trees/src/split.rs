//! Weighted best-split search for CART trees.
//!
//! [`best_split`] is the *naive reference* search
//! ([`crate::SplitStrategy::ExactNaive`]): it gathers and re-sorts a
//! `(value, label, weight)` column for every candidate feature at every
//! node. The production strategies — presorted exact and quantile
//! histogram — live in [`crate::splitter`] and avoid all per-node sorting;
//! this implementation is kept as their parity oracle and benchmark
//! baseline.
//!
//! Note on the oracle's arithmetic: the gain scoring was refactored to the
//! algebraically equivalent fused Gini form ([`children_impurity`]) shared
//! with the production strategies. Scores can differ from the original
//! seed implementation by rounding ulps, which may flip near-tie argmax
//! decisions; the parity guarantee is therefore *Exact ≡ ExactNaive as
//! implemented here* (bit-for-bit, enforced by
//! `tests/strategy_parity.rs`), with identical split *semantics* to the
//! seed (same candidate enumeration, thresholds, and zero-gain policy).

use crate::params::SplitCriterion;
use wdte_data::{entropy_of, gini_of, total_of, ClassCounts, DenseMatrix, Label};

/// A candidate axis-aligned split `x[feature] <= threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Feature index the split tests.
    pub feature: usize,
    /// Threshold; instances with `x[feature] <= threshold` go left.
    pub threshold: f64,
    /// Weighted impurity decrease achieved by the split.
    pub gain: f64,
    /// Weighted class counts of the left child.
    pub left_counts: ClassCounts,
    /// Weighted class counts of the right child.
    pub right_counts: ClassCounts,
    /// Number of samples sent to the left child.
    pub left_samples: usize,
    /// Number of samples sent to the right child.
    pub right_samples: usize,
    /// For histogram splits, the bin index whose upper edge is the
    /// threshold (`None` for exact splits). Used to partition nodes by
    /// precomputed bin codes instead of raw value comparisons.
    pub bin: Option<usize>,
}

/// Impurity of weighted class counts under the chosen criterion.
#[inline]
pub fn impurity(counts: &ClassCounts, criterion: SplitCriterion) -> f64 {
    match criterion {
        SplitCriterion::Gini => counts.gini(),
        SplitCriterion::Entropy => counts.entropy(),
    }
}

/// Weighted impurity of a candidate partition:
/// `(w_l/T)·I(left) + (w_r/T)·I(right)`.
///
/// Shared by every split-search implementation so their floating-point
/// results are bit-identical (the presorted/naive parity guarantee). For
/// Gini the algebraic identity `(w/T)·gini = 2·pos·neg/(w·T)` cuts the
/// division count per evaluated boundary from six to two — and the
/// `2/T` factor is constant per node, so callers pass it precomputed as
/// `gini_scale` (see [`gini_scale`]), leaving two pipelinable divisions
/// in the hottest expression of forest training.
///
/// Callers must ensure both children have positive total weight.
#[inline]
pub fn children_impurity(
    left: &ClassCounts,
    right: &ClassCounts,
    total_weight: f64,
    gini_scale: f64,
    criterion: SplitCriterion,
) -> f64 {
    children_impurity_parts(left.slice(), right.slice(), total_weight, gini_scale, criterion)
}

/// [`children_impurity`] over raw per-class weight slices (index = class),
/// the form the segment splitter's branch-free accumulators produce. The
/// two-class fused Gini fast path is taken exactly when both slices hold
/// two classes, so every strategy working at the same class count stays
/// bit-identical.
#[inline]
pub fn children_impurity_parts(
    left: &[f64],
    right: &[f64],
    total_weight: f64,
    gini_scale: f64,
    criterion: SplitCriterion,
) -> f64 {
    match criterion {
        SplitCriterion::Gini => {
            if let ([left_negative, left_positive], [right_negative, right_positive]) = (left, right) {
                // Fused over the common denominator: one division per boundary
                // (`p_l·n_l/w_l + p_r·n_r/w_r = (p_l·n_l·w_r + p_r·n_r·w_l)/(w_l·w_r)`).
                let left_weight = total_of(left);
                let right_weight = total_of(right);
                let numerator = left_positive * left_negative * right_weight
                    + right_positive * right_negative * left_weight;
                numerator / (left_weight * right_weight) * gini_scale
            } else {
                (total_of(left) / total_weight) * gini_of(left)
                    + (total_of(right) / total_weight) * gini_of(right)
            }
        }
        SplitCriterion::Entropy => {
            (total_of(left) / total_weight) * entropy_of(left)
                + (total_of(right) / total_weight) * entropy_of(right)
        }
    }
}

/// The per-node constant factor of the algebraic Gini form, hoisted out of
/// the boundary loop: `2 / total_weight`.
#[inline]
pub fn gini_scale(total_weight: f64) -> f64 {
    2.0 / total_weight
}

/// Split threshold between two adjacent distinct sorted values: their
/// midpoint, except when rounding would push the midpoint up to
/// `next_value` itself (adjacent doubles). `x <= next_value` would then
/// send the right-hand samples left, desynchronizing the partition from
/// the recorded split (and, for a two-value node, re-deriving the same
/// split forever). Falling back to `value` keeps `x <= t` separating
/// exactly the scanned prefix.
#[inline]
pub fn midpoint_threshold(value: f64, next_value: f64) -> f64 {
    let midpoint = value + (next_value - value) / 2.0;
    if midpoint < next_value {
        midpoint
    } else {
        value
    }
}

/// Finds the best split of `indices` over the candidate features.
///
/// Thresholds are midpoints between consecutive distinct feature values (so
/// a split always separates at least one sample from the rest). Returns
/// `None` when no split satisfies the `min_samples_leaf` constraint or no
/// split has positive gain.
#[allow(clippy::too_many_arguments)]
pub fn best_split(
    features: &DenseMatrix,
    labels: &[Label],
    weights: &[f64],
    indices: &[usize],
    candidate_features: &[usize],
    criterion: SplitCriterion,
    min_samples_leaf: usize,
    num_classes: usize,
) -> Option<Split> {
    if indices.len() < 2 * min_samples_leaf.max(1) {
        return None;
    }
    let mut parent_counts = ClassCounts::with_classes(num_classes);
    for &i in indices {
        parent_counts.add(labels[i], weights[i]);
    }
    let parent_impurity = impurity(&parent_counts, criterion);
    if parent_impurity <= 0.0 {
        return None; // already pure
    }
    let total_weight = parent_counts.total();
    if total_weight <= 0.0 {
        return None;
    }
    let scale = gini_scale(total_weight);

    let mut best: Option<Split> = None;
    // Reusable scratch buffer of (value, label, weight) sorted per feature.
    let mut column: Vec<(f64, Label, f64)> = Vec::with_capacity(indices.len());
    for &feature in candidate_features {
        column.clear();
        for &i in indices {
            column.push((features.value(i, feature), labels[i], weights[i]));
        }
        // total_cmp is a total order: NaN sorts after +inf instead of
        // panicking mid-training, and the guard below keeps thresholds
        // away from non-finite values.
        column.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut left_counts = ClassCounts::with_classes(num_classes);
        let mut right_counts = parent_counts.clone();
        // Scan split positions between consecutive samples.
        for position in 0..column.len() - 1 {
            let (value, label, weight) = column[position];
            left_counts.add(label, weight);
            right_counts.remove(label, weight);
            let next_value = column[position + 1].0;
            // `!(next > value)` rather than `next <= value`: identical
            // values cannot be separated, and NaN (which compares false
            // both ways) must never become a threshold neighbour. Both
            // ends must be finite or the midpoint would be NaN/inf.
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-aware on purpose
            if !(next_value > value) || !value.is_finite() || !next_value.is_finite() {
                continue;
            }
            let left_samples = position + 1;
            let right_samples = column.len() - left_samples;
            if left_samples < min_samples_leaf || right_samples < min_samples_leaf {
                continue;
            }
            let left_weight = left_counts.total();
            let right_weight = right_counts.total();
            if left_weight <= 0.0 || right_weight <= 0.0 {
                continue;
            }
            let children =
                children_impurity(&left_counts, &right_counts, total_weight, scale, criterion);
            let gain = parent_impurity - children;
            // Zero-gain splits are still accepted when nothing better
            // exists: an impure node may require a locally useless split
            // (e.g. XOR-like patterns) before a useful one becomes
            // available deeper down, and the trigger-forcing loop of the
            // watermarking scheme relies on trees being able to keep
            // isolating heavily weighted samples.
            let better = best.as_ref().map_or(gain >= 0.0, |b| gain > b.gain);
            if better {
                best = Some(Split {
                    feature,
                    threshold: midpoint_threshold(value, next_value),
                    gain,
                    left_counts: left_counts.clone(),
                    right_counts: right_counts.clone(),
                    left_samples,
                    right_samples,
                    bin: None,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Label = Label::Positive;
    const N: Label = Label::Negative;

    fn matrix(rows: &[Vec<f64>]) -> DenseMatrix {
        DenseMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn splits_a_perfectly_separable_feature() {
        let features = matrix(&[vec![0.1], vec![0.2], vec![0.8], vec![0.9]]);
        let labels = [N, N, P, P];
        let weights = [1.0; 4];
        let split = best_split(
            &features,
            &labels,
            &weights,
            &[0, 1, 2, 3],
            &[0],
            SplitCriterion::Gini,
            1,
            2,
        )
        .expect("split exists");
        assert_eq!(split.feature, 0);
        assert!(split.threshold > 0.2 && split.threshold < 0.8);
        assert!(
            (split.gain - 0.5).abs() < 1e-9,
            "gain should equal parent gini 0.5, got {}",
            split.gain
        );
        assert_eq!(split.left_samples, 2);
        assert_eq!(split.right_samples, 2);
    }

    #[test]
    fn picks_the_informative_feature_among_noise() {
        // Feature 0 is random-ish, feature 1 separates the classes.
        let features = matrix(&[vec![0.5, 0.1], vec![0.9, 0.2], vec![0.4, 0.9], vec![0.8, 0.8]]);
        let labels = [N, N, P, P];
        let weights = [1.0; 4];
        let split = best_split(
            &features,
            &labels,
            &weights,
            &[0, 1, 2, 3],
            &[0, 1],
            SplitCriterion::Entropy,
            1,
            2,
        )
        .expect("split exists");
        assert_eq!(split.feature, 1);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let features = matrix(&[vec![0.1], vec![0.5], vec![0.9]]);
        let labels = [N, P, P];
        let weights = [1.0; 3];
        // min_samples_leaf = 2 makes every split position illegal for 3 samples.
        assert!(best_split(
            &features,
            &labels,
            &weights,
            &[0, 1, 2],
            &[0],
            SplitCriterion::Gini,
            2,
            2,
        )
        .is_none());
    }

    #[test]
    fn pure_nodes_do_not_split() {
        let features = matrix(&[vec![0.1], vec![0.9]]);
        let labels = [P, P];
        let weights = [1.0; 2];
        assert!(best_split(
            &features,
            &labels,
            &weights,
            &[0, 1],
            &[0],
            SplitCriterion::Gini,
            1,
            2,
        )
        .is_none());
    }

    #[test]
    fn identical_feature_values_cannot_be_separated() {
        let features = matrix(&[vec![0.5], vec![0.5], vec![0.5], vec![0.5]]);
        let labels = [N, P, N, P];
        let weights = [1.0; 4];
        assert!(best_split(
            &features,
            &labels,
            &weights,
            &[0, 1, 2, 3],
            &[0],
            SplitCriterion::Gini,
            1,
            2,
        )
        .is_none());
    }

    #[test]
    fn sample_weights_move_the_optimal_threshold() {
        // One heavily weighted positive on the left side dominates the
        // impurity computation and drags the best split next to it.
        let features = matrix(&[vec![0.1], vec![0.2], vec![0.3], vec![0.9]]);
        let labels = [P, N, N, N];
        let uniform = [1.0, 1.0, 1.0, 1.0];
        let weighted = [50.0, 1.0, 1.0, 1.0];
        let split_uniform = best_split(
            &features,
            &labels,
            &uniform,
            &[0, 1, 2, 3],
            &[0],
            SplitCriterion::Gini,
            1,
            2,
        )
        .unwrap();
        let split_weighted = best_split(
            &features,
            &labels,
            &weighted,
            &[0, 1, 2, 3],
            &[0],
            SplitCriterion::Gini,
            1,
            2,
        )
        .unwrap();
        // Both should cut immediately after the positive sample. The
        // weighted parent is almost pure (the positive holds ~94% of the
        // mass), so its achievable gain is *smaller* than the uniform one,
        // but both splits fully separate the classes.
        assert!(split_uniform.threshold < 0.2);
        assert!(split_weighted.threshold < 0.2);
        assert!(split_uniform.gain > 0.0 && split_weighted.gain > 0.0);
        assert!(split_weighted.gain < split_uniform.gain);
    }

    #[test]
    fn nan_features_neither_panic_nor_become_thresholds() {
        let features = matrix(&[vec![0.1], vec![0.2], vec![f64::NAN], vec![0.9]]);
        let labels = [N, N, P, P];
        let weights = [1.0; 4];
        let split = best_split(
            &features,
            &labels,
            &weights,
            &[0, 1, 2, 3],
            &[0],
            SplitCriterion::Gini,
            1,
            2,
        )
        .expect("finite values still admit a split");
        assert!(split.threshold.is_finite());
        // NaN sorts last (total_cmp), so the only boundaries considered lie
        // between the finite values.
        assert!(split.threshold < 0.9);
    }

    #[test]
    fn all_nan_column_yields_no_split() {
        let features = matrix(&[vec![f64::NAN], vec![f64::NAN], vec![f64::NAN]]);
        let labels = [N, P, P];
        let weights = [1.0; 3];
        assert!(best_split(
            &features,
            &labels,
            &weights,
            &[0, 1, 2],
            &[0],
            SplitCriterion::Gini,
            1,
            2,
        )
        .is_none());
    }

    #[test]
    fn subset_of_indices_is_honoured() {
        let features = matrix(&[vec![0.1], vec![0.2], vec![0.8], vec![0.9]]);
        let labels = [N, N, P, P];
        let weights = [1.0; 4];
        // Only negatives selected: node is pure, no split.
        assert!(best_split(
            &features,
            &labels,
            &weights,
            &[0, 1],
            &[0],
            SplitCriterion::Gini,
            1,
            2,
        )
        .is_none());
    }
}
