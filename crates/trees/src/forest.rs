//! Random forests without bootstrap.
//!
//! The paper's scheme targets "random forest models without bootstrap", in
//! which every tree sees the full training set (optionally with per-sample
//! weights) but only a random subset of the features, and the ensemble
//! output is the *sequence of per-tree predictions* (the `predict.all`
//! behaviour of R / a thin sklearn wrapper). [`RandomForest::predict_all`]
//! exposes exactly that interface; majority voting is layered on top.

use crate::params::ForestParams;
use crate::tree::{DecisionTree, Node, TreeStats};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{DeError, Deserialize, Serialize, Value};
use wdte_data::{ConfusionMatrix, Dataset, Label};

/// A trained random forest without bootstrap.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    feature_subsets: Vec<Vec<usize>>,
    num_features: usize,
    num_classes: usize,
}

/// Smallest class count covering every leaf label of `trees` (at least 2);
/// the k assumed for forests whose artefacts predate the explicit field.
fn max_leaf_classes(trees: &[DecisionTree]) -> usize {
    trees
        .iter()
        .flat_map(|tree| tree.nodes())
        .filter_map(|node| match node {
            Node::Leaf { label, .. } => Some(label.index() + 1),
            Node::Internal { .. } => None,
        })
        .max()
        .unwrap_or(2)
        .max(2)
}

/// Deserialization validates the forest-level invariants (each tree's
/// arena is already validated by [`DecisionTree`]'s deserializer), so a
/// corrupted serialized model is rejected instead of panicking later.
impl Deserialize for RandomForest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value.as_map().ok_or_else(|| DeError::expected("map", "RandomForest"))?;
        let trees: Vec<DecisionTree> = Vec::from_value(serde::map_get(entries, "trees")?)?;
        let feature_subsets: Vec<Vec<usize>> =
            Vec::from_value(serde::map_get(entries, "feature_subsets")?)?;
        let num_features = usize::from_value(serde::map_get(entries, "num_features")?)?;
        if trees.is_empty() {
            return Err(DeError::new(
                "invalid RandomForest: a forest needs at least one tree",
            ));
        }
        if feature_subsets.len() != trees.len() {
            return Err(DeError::new(format!(
                "invalid RandomForest: {} trees but {} feature subsets",
                trees.len(),
                feature_subsets.len()
            )));
        }
        if let Some(max) = trees.iter().map(DecisionTree::num_features).max() {
            if num_features < max {
                return Err(DeError::new(format!(
                    "invalid RandomForest: claims {num_features} features but a tree uses {max}"
                )));
            }
        }
        for (tree, subset) in feature_subsets.iter().enumerate() {
            if subset.is_empty() {
                return Err(DeError::new(format!(
                    "invalid RandomForest: tree {tree} has an empty feature subset"
                )));
            }
            if let Some(&bad) = subset.iter().find(|&&feature| feature >= num_features) {
                return Err(DeError::new(format!(
                    "invalid RandomForest: tree {tree}'s subset references feature {bad} of {num_features}"
                )));
            }
        }
        // Forests serialized before the k-class generalization carry no
        // class count; they are binary by construction, so infer k from the
        // leaf labels instead of rejecting the artefact.
        let leaf_classes = max_leaf_classes(&trees);
        let num_classes = match entries.iter().find(|(key, _)| key == "num_classes") {
            Some((_, value)) => {
                let declared = usize::from_value(value)?;
                if declared < leaf_classes {
                    return Err(DeError::new(format!(
                        "invalid RandomForest: claims {declared} classes but a leaf predicts class {}",
                        leaf_classes - 1
                    )));
                }
                declared
            }
            None => leaf_classes,
        };
        Ok(RandomForest {
            trees,
            feature_subsets,
            num_features,
            num_classes,
        })
    }
}

impl RandomForest {
    /// Trains a forest on `dataset` with unit sample weights.
    pub fn fit<R: Rng + ?Sized>(dataset: &Dataset, params: &ForestParams, rng: &mut R) -> Self {
        let weights = vec![1.0; dataset.len()];
        Self::fit_weighted(dataset, &weights, params, rng)
    }

    /// Trains a forest with explicit per-sample weights (the mechanism
    /// Algorithm 1 uses to force behaviour on the trigger set).
    ///
    /// Each tree receives an independent random feature subset drawn from
    /// `rng`; training itself is parallelized with per-tree RNG streams
    /// derived from `rng`, so results are deterministic for a fixed seed
    /// regardless of thread scheduling.
    ///
    /// All trees share the dataset-level presorted columns (or quantile
    /// binning, depending on `params.tree.strategy`), so only the first
    /// `fit_weighted` call on a dataset pays the `O(d · n log n)` sort;
    /// repeated calls with different weights — the watermark embedding
    /// loop — train from the cache.
    pub fn fit_weighted<R: Rng + ?Sized>(
        dataset: &Dataset,
        weights: &[f64],
        params: &ForestParams,
        rng: &mut R,
    ) -> Self {
        assert!(params.num_trees >= 1, "a forest needs at least one tree");
        assert_eq!(weights.len(), dataset.len(), "one weight per sample required");
        let subset_size = params.feature_subset.size(dataset.num_features());
        let feature_subsets: Vec<Vec<usize>> = (0..params.num_trees)
            .map(|_| {
                let mut features: Vec<usize> = (0..dataset.num_features()).collect();
                features.shuffle(rng);
                features.truncate(subset_size);
                features.sort_unstable();
                features
            })
            .collect();

        let trees: Vec<DecisionTree> = feature_subsets
            .par_iter()
            .map(|subset| DecisionTree::fit_weighted(dataset, weights, Some(subset), &params.tree))
            .collect();

        RandomForest {
            trees,
            feature_subsets,
            num_features: dataset.num_features(),
            num_classes: dataset.num_classes(),
        }
    }

    /// Builds a forest from already-trained trees. Used by the watermarking
    /// scheme, which interleaves trees from two separately trained forests
    /// according to the owner's signature, and by the 3SAT reduction.
    ///
    /// # Panics
    /// Panics if `trees` is empty or the trees disagree on dimensionality.
    pub fn from_trees(trees: Vec<DecisionTree>) -> Self {
        let num_classes = max_leaf_classes(&trees);
        Self::from_trees_with_classes(trees, num_classes)
    }

    /// [`RandomForest::from_trees`] with an explicit class count, for
    /// ensembles whose trees do not happen to predict every class.
    ///
    /// # Panics
    /// Panics if `trees` is empty, the trees disagree on dimensionality, or
    /// a leaf predicts a class at or beyond `num_classes`.
    pub fn from_trees_with_classes(trees: Vec<DecisionTree>, num_classes: usize) -> Self {
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        let num_classes = num_classes.max(2);
        assert!(
            max_leaf_classes(&trees) <= num_classes,
            "a leaf predicts a class beyond num_classes"
        );
        let num_features = trees.iter().map(|t| t.num_features()).max().expect("non-empty");
        let feature_subsets = trees.iter().map(|_| (0..num_features).collect()).collect();
        RandomForest {
            trees,
            feature_subsets,
            num_features,
            num_classes,
        }
    }

    /// Number of trees `m` in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features of the training space.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes `k` the forest votes over.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Borrow of the individual trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// The feature subset each tree was trained on.
    pub fn feature_subsets(&self) -> &[Vec<usize>] {
        &self.feature_subsets
    }

    /// Per-tree predictions for one instance, in tree order. This is the
    /// ensemble output assumed by the watermarking scheme.
    pub fn predict_all(&self, instance: &[f64]) -> Vec<Label> {
        self.trees.iter().map(|t| t.predict(instance)).collect()
    }

    /// Per-class vote counts for one instance, indexed by class.
    pub fn vote_counts(&self, instance: &[f64]) -> Vec<usize> {
        let mut votes = vec![0usize; self.num_classes];
        for tree in &self.trees {
            votes[tree.predict(instance).index()] += 1;
        }
        votes
    }

    /// Plurality-vote prediction for one instance; ties go to the lowest
    /// class index (the negative class for k=2, matching the binary
    /// implementation's `2·positives > m` rule exactly).
    pub fn predict(&self, instance: &[f64]) -> Label {
        let votes = self.vote_counts(instance);
        let mut winner = 0usize;
        for (class, &count) in votes.iter().enumerate().skip(1) {
            if count > votes[winner] {
                winner = class;
            }
        }
        Label::from_index(winner).expect("class count bounded by Label::MAX_CLASSES")
    }

    /// Fraction of trees voting for the positive class; a calibrated score
    /// usable for ROC analysis (one-vs-rest for class 1 when k > 2).
    pub fn positive_vote_fraction(&self, instance: &[f64]) -> f64 {
        let positive_votes =
            self.trees.iter().filter(|t| t.predict(instance) == Label::Positive).count();
        positive_votes as f64 / self.trees.len() as f64
    }

    /// Majority-vote predictions for every instance of a dataset.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Vec<Label> {
        dataset.iter().map(|(row, _)| self.predict(row)).collect()
    }

    /// Majority-vote accuracy over a dataset.
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let predictions = self.predict_dataset(dataset);
        wdte_data::accuracy(dataset.labels(), &predictions)
    }

    /// Confusion matrix of majority-vote predictions over a dataset, sized
    /// to cover both the forest's and the dataset's class count.
    pub fn confusion(&self, dataset: &Dataset) -> ConfusionMatrix {
        let predictions = self.predict_dataset(dataset);
        ConfusionMatrix::from_predictions_with_classes(
            dataset.labels(),
            &predictions,
            self.num_classes.max(dataset.num_classes()),
        )
    }

    /// Structural statistics of every tree, in tree order.
    pub fn tree_stats(&self) -> Vec<TreeStats> {
        self.trees.iter().map(|t| t.stats()).collect()
    }

    /// Total number of leaves in the ensemble; the paper points at this
    /// quantity to explain why forgery is harder on ijcnn1 than on the
    /// other datasets.
    pub fn total_leaves(&self) -> usize {
        self.trees.iter().map(|t| t.num_leaves()).sum()
    }

    /// Replaces the `index`-th tree. Used by tamper-simulation tests.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn replace_tree(&mut self, index: usize, tree: DecisionTree) {
        self.trees[index] = tree;
    }
}

/// Deterministically derives independent per-tree seeds from a master RNG;
/// exposed for callers that need to parallelize their own per-tree work
/// while keeping results reproducible.
pub fn derive_seeds<R: Rng + ?Sized>(count: usize, rng: &mut R) -> Vec<u64> {
    (0..count).map(|_| rng.gen()).collect()
}

/// Creates a deterministic RNG from a derived seed.
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{FeatureSubset, SplitCriterion, TreeParams};
    use wdte_data::SyntheticSpec;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    fn tabular() -> Dataset {
        SyntheticSpec::breast_cancer_like().generate(&mut SmallRng::seed_from_u64(3))
    }

    #[test]
    fn forest_learns_the_tabular_standin_well() {
        let dataset = tabular();
        let mut rng = rng();
        let (train, test) = dataset.split_stratified(0.7, &mut rng);
        let params = ForestParams {
            num_trees: 25,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&train, &params, &mut rng);
        let accuracy = forest.accuracy(&test);
        assert!(accuracy > 0.9, "forest accuracy too low: {accuracy}");
        assert_eq!(forest.num_trees(), 25);
    }

    #[test]
    fn predict_all_has_one_vote_per_tree_and_matches_majority() {
        let dataset = tabular();
        let mut rng = rng();
        let params = ForestParams {
            num_trees: 9,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&dataset, &params, &mut rng);
        for (row, _) in dataset.iter().take(20) {
            let votes = forest.predict_all(row);
            assert_eq!(votes.len(), 9);
            let positives = votes.iter().filter(|&&v| v == Label::Positive).count();
            let expected = if 2 * positives > votes.len() {
                Label::Positive
            } else {
                Label::Negative
            };
            assert_eq!(forest.predict(row), expected);
            let fraction = forest.positive_vote_fraction(row);
            assert!((fraction - positives as f64 / 9.0).abs() < 1e-12);
        }
    }

    #[test]
    fn training_is_deterministic_for_a_fixed_seed() {
        let dataset = tabular();
        let params = ForestParams {
            num_trees: 7,
            ..ForestParams::default()
        };
        let a = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(5));
        let b = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(5));
        let c = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn feature_subsets_respect_requested_size() {
        let dataset = tabular();
        let mut rng = rng();
        let params = ForestParams {
            num_trees: 5,
            feature_subset: FeatureSubset::Fraction(0.2),
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&dataset, &params, &mut rng);
        for subset in forest.feature_subsets() {
            assert_eq!(subset.len(), 6); // 20% of 30 features
        }
    }

    #[test]
    fn sample_weights_force_trigger_like_behaviour() {
        // Pick a handful of instances, flip their labels, and give them huge
        // weights: every tree should memorize the flipped label when allowed
        // to see all features.
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.4)
            .generate(&mut SmallRng::seed_from_u64(9));
        let flipped = dataset.with_labels_flipped_at(&[0, 1, 2]).unwrap();
        let mut weights = vec![1.0; flipped.len()];
        for w in weights.iter_mut().take(3) {
            *w = 200.0;
        }
        let params = ForestParams {
            num_trees: 5,
            feature_subset: FeatureSubset::All,
            tree: TreeParams::default(),
        };
        let mut rng = rng();
        let forest = RandomForest::fit_weighted(&flipped, &weights, &params, &mut rng);
        for i in 0..3 {
            for tree in forest.trees() {
                assert_eq!(
                    tree.predict(flipped.instance(i)),
                    flipped.label(i),
                    "every tree must follow the heavily weighted flipped label"
                );
            }
        }
    }

    #[test]
    fn from_trees_preserves_order() {
        let dataset = tabular();
        let mut rng = rng();
        let t1 = DecisionTree::fit(&dataset, &TreeParams::with_max_depth(1));
        let t2 = DecisionTree::fit(&dataset, &TreeParams::with_max_depth(3));
        let forest = RandomForest::from_trees(vec![t1.clone(), t2.clone()]);
        assert_eq!(forest.num_trees(), 2);
        assert_eq!(forest.trees()[0], t1);
        assert_eq!(forest.trees()[1], t2);
        let _ = rng.gen::<u64>();
    }

    #[test]
    fn stats_and_total_leaves_are_consistent() {
        let dataset = tabular();
        let mut rng = rng();
        let params = ForestParams {
            num_trees: 6,
            tree: TreeParams {
                max_leaves: Some(8),
                criterion: SplitCriterion::Entropy,
                ..TreeParams::default()
            },
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&dataset, &params, &mut rng);
        let stats = forest.tree_stats();
        assert_eq!(stats.len(), 6);
        assert_eq!(
            forest.total_leaves(),
            stats.iter().map(|s| s.leaves).sum::<usize>()
        );
        assert!(stats.iter().all(|s| s.leaves <= 8));
    }

    #[test]
    fn imbalanced_data_still_beats_the_majority_baseline() {
        let dataset = SyntheticSpec::ijcnn1_like()
            .scaled(0.05)
            .generate(&mut SmallRng::seed_from_u64(18));
        let mut rng = rng();
        let (train, test) = dataset.split_stratified(0.7, &mut rng);
        let params = ForestParams {
            num_trees: 20,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&train, &params, &mut rng);
        let confusion = forest.confusion(&test);
        assert!(confusion.accuracy() > 0.9);
        assert!(
            confusion.balanced_accuracy() > 0.75,
            "balanced accuracy {}",
            confusion.balanced_accuracy()
        );
    }

    #[test]
    fn derive_seeds_is_reproducible() {
        let a = derive_seeds(5, &mut SmallRng::seed_from_u64(1));
        let b = derive_seeds(5, &mut SmallRng::seed_from_u64(1));
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let _ = rng_from_seed(a[0]);
    }
}
