//! Intervals and axis-aligned boxes over the feature space.
//!
//! Decision-tree prediction paths induce axis-aligned regions whose bounds
//! come from `x[f] <= v` tests: the lower bound is *exclusive* (taking the
//! right branch means `x > v`) and the upper bound is *inclusive* (taking
//! the left branch means `x <= v`). The forgery solver additionally
//! intersects these regions with closed L∞ balls and the closed `[0, 1]`
//! data domain, so intervals track the openness of each endpoint
//! explicitly.

use serde::{Deserialize, Serialize};

/// A (possibly half-open) interval of the real line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower endpoint (may be `-inf`).
    pub lo: f64,
    /// Whether the lower endpoint itself belongs to the interval.
    pub lo_inclusive: bool,
    /// Upper endpoint (may be `+inf`).
    pub hi: f64,
    /// Whether the upper endpoint itself belongs to the interval.
    pub hi_inclusive: bool,
}

impl Interval {
    /// The whole real line.
    pub fn unbounded() -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            lo_inclusive: false,
            hi: f64::INFINITY,
            hi_inclusive: false,
        }
    }

    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Self {
        Self {
            lo,
            lo_inclusive: true,
            hi,
            hi_inclusive: true,
        }
    }

    /// Tree-path interval `(lo, hi]`: the region selected by taking a right
    /// branch at threshold `lo` and a left branch at threshold `hi`.
    pub fn tree_path(lo: f64, hi: f64) -> Self {
        Self {
            lo,
            lo_inclusive: false,
            hi,
            hi_inclusive: true,
        }
    }

    /// `true` if the interval contains at least one point.
    pub fn is_feasible(&self) -> bool {
        if self.lo < self.hi {
            true
        } else if self.lo == self.hi {
            self.lo_inclusive && self.hi_inclusive && self.lo.is_finite()
        } else {
            false
        }
    }

    /// `true` if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        let above = if self.lo_inclusive {
            value >= self.lo
        } else {
            value > self.lo
        };
        let below = if self.hi_inclusive {
            value <= self.hi
        } else {
            value < self.hi
        };
        above && below
    }

    /// Intersection of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        let (lo, lo_inclusive) = if self.lo > other.lo {
            (self.lo, self.lo_inclusive)
        } else if other.lo > self.lo {
            (other.lo, other.lo_inclusive)
        } else {
            (self.lo, self.lo_inclusive && other.lo_inclusive)
        };
        let (hi, hi_inclusive) = if self.hi < other.hi {
            (self.hi, self.hi_inclusive)
        } else if other.hi < self.hi {
            (other.hi, other.hi_inclusive)
        } else {
            (self.hi, self.hi_inclusive && other.hi_inclusive)
        };
        Interval {
            lo,
            lo_inclusive,
            hi,
            hi_inclusive,
        }
    }

    /// A concrete point inside the interval, preferring `preferred` when it
    /// already lies inside (used to keep forged instances close to the
    /// reference instance). Returns `None` for infeasible intervals.
    pub fn witness(&self, preferred: Option<f64>) -> Option<f64> {
        if !self.is_feasible() {
            return None;
        }
        if let Some(p) = preferred {
            if self.contains(p) {
                return Some(p);
            }
        }
        // Degenerate single-point interval.
        if self.lo == self.hi {
            return Some(self.lo);
        }
        let lo_finite = self.lo.is_finite();
        let hi_finite = self.hi.is_finite();
        let candidate = match (lo_finite, hi_finite) {
            (true, true) => (self.lo + self.hi) / 2.0,
            (true, false) => self.lo + 1.0,
            (false, true) => self.hi - 1.0,
            (false, false) => 0.0,
        };
        if self.contains(candidate) {
            Some(candidate)
        } else if self.hi_inclusive && hi_finite {
            Some(self.hi)
        } else if self.lo_inclusive && lo_finite {
            Some(self.lo)
        } else {
            // Feasible open interval but the midpoint fell outside due to
            // rounding; nudge towards the interior.
            let nudged = self.lo + (self.hi - self.lo) * 0.25;
            self.contains(nudged).then_some(nudged)
        }
    }
}

/// An axis-aligned box: one interval per feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxRegion {
    intervals: Vec<Interval>,
}

impl BoxRegion {
    /// The unconstrained box over `dims` features.
    pub fn unbounded(dims: usize) -> Self {
        Self {
            intervals: vec![Interval::unbounded(); dims],
        }
    }

    /// Builds a box from explicit per-feature intervals.
    pub fn new(intervals: Vec<Interval>) -> Self {
        Self { intervals }
    }

    /// Builds the box of a decision-tree leaf from its raw
    /// `(lower, upper)` path bounds (exclusive lower, inclusive upper).
    pub fn from_tree_bounds(bounds: &[(f64, f64)]) -> Self {
        Self {
            intervals: bounds.iter().map(|&(lo, hi)| Interval::tree_path(lo, hi)).collect(),
        }
    }

    /// The closed L∞ ball of radius `epsilon` around `center`, intersected
    /// with nothing else.
    pub fn linf_ball(center: &[f64], epsilon: f64) -> Self {
        Self {
            intervals: center.iter().map(|&c| Interval::closed(c - epsilon, c + epsilon)).collect(),
        }
    }

    /// The closed hyper-cube `[lo, hi]^dims` (e.g. the `[0, 1]` data
    /// domain).
    pub fn cube(dims: usize, lo: f64, hi: f64) -> Self {
        Self {
            intervals: vec![Interval::closed(lo, hi); dims],
        }
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.intervals.len()
    }

    /// Per-feature intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// `true` if every per-feature interval is feasible.
    pub fn is_feasible(&self) -> bool {
        self.intervals.iter().all(Interval::is_feasible)
    }

    /// `true` if `point` lies inside the box.
    ///
    /// # Panics
    /// Panics if `point.len() != dims()`.
    pub fn contains(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dims(), "dimensionality mismatch");
        self.intervals
            .iter()
            .zip(point)
            .all(|(interval, &value)| interval.contains(value))
    }

    /// Component-wise intersection of two boxes.
    ///
    /// # Panics
    /// Panics if the boxes have different dimensionality.
    pub fn intersect(&self, other: &BoxRegion) -> BoxRegion {
        assert_eq!(self.dims(), other.dims(), "dimensionality mismatch");
        BoxRegion {
            intervals: self
                .intervals
                .iter()
                .zip(&other.intervals)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        }
    }

    /// Like [`BoxRegion::intersect`] but returns `None` as soon as any
    /// dimension becomes infeasible (cheaper for the solver's forward
    /// checking).
    pub fn intersect_feasible(&self, other: &BoxRegion) -> Option<BoxRegion> {
        assert_eq!(self.dims(), other.dims(), "dimensionality mismatch");
        let mut intervals = Vec::with_capacity(self.dims());
        for (a, b) in self.intervals.iter().zip(&other.intervals) {
            let merged = a.intersect(b);
            if !merged.is_feasible() {
                return None;
            }
            intervals.push(merged);
        }
        Some(BoxRegion { intervals })
    }

    /// A concrete point inside the box, preferring the coordinates of
    /// `preferred` wherever they already satisfy the box. Returns `None`
    /// for infeasible boxes.
    pub fn witness(&self, preferred: Option<&[f64]>) -> Option<Vec<f64>> {
        let mut point = Vec::with_capacity(self.dims());
        for (index, interval) in self.intervals.iter().enumerate() {
            let preference = preferred.map(|p| p[index]);
            point.push(interval.witness(preference)?);
        }
        Some(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_interval_contains_its_endpoints() {
        let i = Interval::closed(0.0, 1.0);
        assert!(i.contains(0.0));
        assert!(i.contains(1.0));
        assert!(!i.contains(-0.1));
        assert!(i.is_feasible());
    }

    #[test]
    fn tree_path_interval_excludes_lower_endpoint() {
        let i = Interval::tree_path(0.5, 0.8);
        assert!(!i.contains(0.5));
        assert!(i.contains(0.5000001));
        assert!(i.contains(0.8));
        assert!(!i.contains(0.8000001));
    }

    #[test]
    fn degenerate_intervals() {
        assert!(Interval::closed(0.3, 0.3).is_feasible());
        assert!(Interval::closed(0.3, 0.3).contains(0.3));
        assert!(!Interval::tree_path(0.3, 0.3).is_feasible());
        assert!(!Interval::closed(0.4, 0.3).is_feasible());
    }

    #[test]
    fn intersection_keeps_the_tighter_bound_and_openness() {
        let a = Interval::tree_path(0.2, 0.9);
        let b = Interval::closed(0.0, 0.5);
        let c = a.intersect(&b);
        assert_eq!(c.lo, 0.2);
        assert!(!c.lo_inclusive);
        assert_eq!(c.hi, 0.5);
        assert!(c.hi_inclusive);
        // Equal endpoints: inclusiveness is the conjunction.
        let d = Interval::closed(0.2, 0.9).intersect(&Interval::tree_path(0.2, 0.9));
        assert!(!d.lo_inclusive);
        assert!(d.hi_inclusive);
    }

    #[test]
    fn witness_prefers_the_reference_value() {
        let i = Interval::closed(0.0, 1.0);
        assert_eq!(i.witness(Some(0.42)), Some(0.42));
        assert_eq!(i.witness(Some(3.0)), Some(0.5));
        assert_eq!(Interval::closed(0.3, 0.3).witness(None), Some(0.3));
        assert_eq!(Interval::closed(0.4, 0.1).witness(None), None);
        // Unbounded intervals still produce something finite.
        let w = Interval::unbounded().witness(None).unwrap();
        assert!(w.is_finite());
    }

    #[test]
    fn box_from_tree_bounds_and_containment() {
        let bounds = [(f64::NEG_INFINITY, 0.5), (0.2, f64::INFINITY)];
        let region = BoxRegion::from_tree_bounds(&bounds);
        assert!(region.contains(&[0.5, 0.3]));
        assert!(!region.contains(&[0.6, 0.3]));
        assert!(!region.contains(&[0.5, 0.2])); // lower bound exclusive
    }

    #[test]
    fn box_intersection_and_feasibility() {
        let a = BoxRegion::cube(2, 0.0, 1.0);
        let ball = BoxRegion::linf_ball(&[0.9, 0.9], 0.2);
        let merged = a.intersect(&ball);
        assert!(merged.is_feasible());
        assert!(merged.contains(&[1.0, 0.95]));
        assert!(!merged.contains(&[0.6, 0.95]));

        let disjoint = BoxRegion::linf_ball(&[5.0, 5.0], 0.1);
        assert!(a.intersect_feasible(&disjoint).is_none());
        assert!(a.intersect_feasible(&ball).is_some());
    }

    #[test]
    fn box_witness_prefers_reference_coordinates() {
        let region = BoxRegion::new(vec![Interval::closed(0.0, 1.0), Interval::tree_path(0.6, 0.9)]);
        let witness = region.witness(Some(&[0.3, 0.1])).unwrap();
        assert_eq!(witness[0], 0.3); // reference kept where possible
        assert!(witness[1] > 0.6 && witness[1] <= 0.9); // moved where necessary
        assert!(region.contains(&witness));
    }

    #[test]
    fn infeasible_box_has_no_witness() {
        let region = BoxRegion::new(vec![Interval::closed(0.0, 1.0), Interval::closed(2.0, 1.0)]);
        assert!(!region.is_feasible());
        assert!(region.witness(None).is_none());
    }
}
