//! 3CNF formulas and a reference DPLL SAT solver.
//!
//! The paper's NP-hardness proof (Theorem 1) reduces 3SAT to the watermark
//! forgery problem. This module provides the 3CNF side of that reduction —
//! formula representation, a random-instance generator and a small DPLL
//! solver with unit propagation — so the reduction can be cross-checked
//! end-to-end: a formula is satisfiable iff the forgery solver finds an
//! instance for the reduced ensemble.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal: a propositional variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// Zero-based variable index.
    pub variable: usize,
    /// `true` when the literal is the negation of the variable.
    pub negated: bool,
}

impl Literal {
    /// Positive literal of `variable`.
    pub fn positive(variable: usize) -> Self {
        Self {
            variable,
            negated: false,
        }
    }

    /// Negative literal of `variable`.
    pub fn negative(variable: usize) -> Self {
        Self {
            variable,
            negated: true,
        }
    }

    /// Evaluates the literal under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.variable] ^ self.negated
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "!x{}", self.variable)
        } else {
            write!(f, "x{}", self.variable)
        }
    }
}

/// A clause: a disjunction of at most three literals (3CNF).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clause {
    /// The literals of the clause (1 to 3 of them).
    pub literals: Vec<Literal>,
}

impl Clause {
    /// Builds a clause, validating the 3CNF arity.
    ///
    /// # Panics
    /// Panics if the clause is empty or has more than three literals.
    pub fn new(literals: Vec<Literal>) -> Self {
        assert!(
            (1..=3).contains(&literals.len()),
            "3CNF clauses have between one and three literals"
        );
        Self { literals }
    }

    /// Evaluates the clause under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.literals.iter().any(|l| l.eval(assignment))
    }
}

/// A 3CNF formula: a conjunction of clauses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnf {
    /// Number of propositional variables (indexed `0..num_variables`).
    pub num_variables: usize,
    /// The clauses of the formula.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Builds a formula, validating that every literal refers to a declared
    /// variable.
    ///
    /// # Panics
    /// Panics on an out-of-range variable index.
    pub fn new(num_variables: usize, clauses: Vec<Clause>) -> Self {
        for clause in &clauses {
            for literal in &clause.literals {
                assert!(
                    literal.variable < num_variables,
                    "literal refers to an undeclared variable"
                );
            }
        }
        Self {
            num_variables,
            clauses,
        }
    }

    /// Evaluates the formula under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(
            assignment.len(),
            self.num_variables,
            "assignment must cover every variable"
        );
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// The example formula of the paper, `(x1 ∨ x2) ∧ (x2 ∨ x3 ∨ ¬x4)`,
    /// with variables renumbered from zero.
    pub fn paper_example() -> Self {
        Cnf::new(
            4,
            vec![
                Clause::new(vec![Literal::positive(0), Literal::positive(1)]),
                Clause::new(vec![
                    Literal::positive(1),
                    Literal::positive(2),
                    Literal::negative(3),
                ]),
            ],
        )
    }

    /// Generates a random 3CNF formula with exactly three literals per
    /// clause over distinct variables.
    ///
    /// # Panics
    /// Panics if fewer than three variables are requested.
    pub fn random<R: Rng + ?Sized>(num_variables: usize, num_clauses: usize, rng: &mut R) -> Self {
        assert!(num_variables >= 3, "random 3CNF needs at least three variables");
        let clauses = (0..num_clauses)
            .map(|_| {
                let mut variables: Vec<usize> = (0..num_variables).collect();
                variables.shuffle(rng);
                let literals = variables
                    .into_iter()
                    .take(3)
                    .map(|variable| Literal {
                        variable,
                        negated: rng.gen_bool(0.5),
                    })
                    .collect();
                Clause::new(literals)
            })
            .collect();
        Cnf::new(num_variables, clauses)
    }
}

/// Result of a SAT query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SatResult {
    /// The formula is satisfiable; a model is provided.
    Satisfiable(Vec<bool>),
    /// The formula is unsatisfiable.
    Unsatisfiable,
}

impl SatResult {
    /// The satisfying assignment, if any.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatResult::Satisfiable(model) => Some(model),
            SatResult::Unsatisfiable => None,
        }
    }
}

/// A small DPLL solver with unit propagation, used as ground truth when
/// validating the 3SAT→forgery reduction.
#[derive(Debug, Clone, Default)]
pub struct DpllSolver;

impl DpllSolver {
    /// Decides satisfiability of a CNF formula.
    pub fn solve(&self, formula: &Cnf) -> SatResult {
        let mut assignment: Vec<Option<bool>> = vec![None; formula.num_variables];
        if Self::search(formula, &mut assignment) {
            let model = assignment.into_iter().map(|v| v.unwrap_or(false)).collect();
            SatResult::Satisfiable(model)
        } else {
            SatResult::Unsatisfiable
        }
    }

    fn search(formula: &Cnf, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation to a fixed point.
        let mut trail: Vec<usize> = Vec::new();
        loop {
            let mut propagated = false;
            for clause in &formula.clauses {
                let mut unassigned = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for literal in &clause.literals {
                    match assignment[literal.variable] {
                        Some(value) => {
                            if value ^ literal.negated {
                                satisfied = true;
                                break;
                            }
                        }
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(*literal);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => {
                        // Conflict: undo the propagations made at this level.
                        for &variable in &trail {
                            assignment[variable] = None;
                        }
                        return false;
                    }
                    1 => {
                        let literal = unassigned.expect("exactly one unassigned literal");
                        assignment[literal.variable] = Some(!literal.negated);
                        trail.push(literal.variable);
                        propagated = true;
                    }
                    _ => {}
                }
            }
            if !propagated {
                break;
            }
        }

        // Pick the first unassigned variable and branch.
        match assignment.iter().position(|v| v.is_none()) {
            None => {
                // Full assignment: formula must be satisfied (no conflict was
                // detected and no clause is left unresolved).
                let model: Vec<bool> = assignment.iter().map(|v| v.unwrap_or(false)).collect();
                let ok = formula.eval(&model);
                if !ok {
                    for &variable in &trail {
                        assignment[variable] = None;
                    }
                }
                ok
            }
            Some(variable) => {
                for value in [true, false] {
                    assignment[variable] = Some(value);
                    if Self::search(formula, assignment) {
                        return true;
                    }
                    assignment[variable] = None;
                }
                for &propagated in &trail {
                    assignment[propagated] = None;
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn literal_evaluation() {
        let assignment = [true, false];
        assert!(Literal::positive(0).eval(&assignment));
        assert!(!Literal::negative(0).eval(&assignment));
        assert!(!Literal::positive(1).eval(&assignment));
        assert!(Literal::negative(1).eval(&assignment));
        assert_eq!(Literal::negative(1).to_string(), "!x1");
    }

    #[test]
    #[should_panic(expected = "between one and three literals")]
    fn clauses_are_at_most_ternary() {
        Clause::new(vec![
            Literal::positive(0),
            Literal::positive(1),
            Literal::positive(2),
            Literal::positive(3),
        ]);
    }

    #[test]
    fn paper_example_is_satisfiable() {
        let formula = Cnf::paper_example();
        let result = DpllSolver.solve(&formula);
        let model = result.model().expect("the paper's example is satisfiable");
        assert!(formula.eval(model));
    }

    #[test]
    fn simple_unsatisfiable_formula_is_detected() {
        // (x0) ∧ (¬x0)
        let formula = Cnf::new(
            1,
            vec![
                Clause::new(vec![Literal::positive(0)]),
                Clause::new(vec![Literal::negative(0)]),
            ],
        );
        assert_eq!(DpllSolver.solve(&formula), SatResult::Unsatisfiable);
    }

    #[test]
    fn pigeonhole_like_unsat_instance() {
        // All eight clauses over three variables: unsatisfiable.
        let mut clauses = Vec::new();
        for mask in 0..8u32 {
            let literals = (0..3)
                .map(|v| Literal {
                    variable: v,
                    negated: mask & (1 << v) != 0,
                })
                .collect();
            clauses.push(Clause::new(literals));
        }
        let formula = Cnf::new(3, clauses);
        assert_eq!(DpllSolver.solve(&formula), SatResult::Unsatisfiable);
    }

    #[test]
    fn solver_models_always_satisfy_the_formula() {
        let mut rng = SmallRng::seed_from_u64(123);
        for round in 0..30 {
            let num_variables = 5 + (round % 5);
            let num_clauses = 3 + round;
            let formula = Cnf::random(num_variables, num_clauses, &mut rng);
            if let SatResult::Satisfiable(model) = DpllSolver.solve(&formula) {
                assert!(formula.eval(&model), "solver returned a non-model");
            } else {
                // Unsatisfiability of random instances is cross-checked by
                // brute force for small variable counts.
                let n = formula.num_variables;
                assert!(n <= 12, "brute-force check only feasible for small n");
                let mut any = false;
                for bits in 0..(1u32 << n) {
                    let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
                    if formula.eval(&assignment) {
                        any = true;
                        break;
                    }
                }
                assert!(!any, "solver claimed UNSAT but a model exists");
            }
        }
    }

    #[test]
    fn random_formula_has_requested_shape() {
        let mut rng = SmallRng::seed_from_u64(4);
        let formula = Cnf::random(6, 10, &mut rng);
        assert_eq!(formula.num_variables, 6);
        assert_eq!(formula.clauses.len(), 10);
        for clause in &formula.clauses {
            assert_eq!(clause.literals.len(), 3);
            let mut variables: Vec<usize> = clause.literals.iter().map(|l| l.variable).collect();
            variables.sort_unstable();
            variables.dedup();
            assert_eq!(variables.len(), 3, "clause variables must be distinct");
        }
    }
}
