//! The 3SAT → watermark-forgery reduction of Theorem 1.
//!
//! Each clause of a 3CNF formula becomes a decision tree of depth at most
//! three whose `+1` leaves encode the sufficient conditions for satisfying
//! the clause; the formula is satisfiable iff the forgery problem on the
//! resulting ensemble has a solution for label `+1` and the all-zeros
//! signature. This module implements the conversion function `⟦·⟧` of the
//! paper and the two directions of the solution translation, allowing the
//! reduction to be validated empirically against the reference DPLL solver.

use crate::forge::{ForgeryOutcome, ForgeryQuery, ForgerySolver, LeafIndex, SolverConfig};
use crate::sat::{Clause, Cnf, Literal};
use wdte_data::{ClassCounts, Label};
use wdte_trees::{DecisionTree, Node, RandomForest};

/// Converts a single clause into a decision tree over `num_variables`
/// features, following the inductive definition `⟦ψ⟧` of the paper: every
/// internal node tests `x[var] <= 0` (left = false, right = true), and a
/// branch that already satisfies the clause ends in a `+1` leaf.
pub fn clause_to_tree(clause: &Clause, num_variables: usize) -> DecisionTree {
    let mut nodes = Vec::new();
    build_clause(&clause.literals, &mut nodes);
    DecisionTree::from_nodes(nodes, num_variables)
}

/// Recursively builds the arena for a suffix of the clause's literals and
/// returns the index of the subtree root.
fn build_clause(literals: &[Literal], nodes: &mut Vec<Node>) -> usize {
    let (first, rest) = literals.split_first().expect("clauses are non-empty");
    if rest.is_empty() {
        // ⟦l⟧: a single test on the literal's variable.
        let (left_label, right_label) = if first.negated {
            (Label::Positive, Label::Negative)
        } else {
            (Label::Negative, Label::Positive)
        };
        let slot = nodes.len();
        nodes.push(Node::Internal {
            feature: first.variable,
            threshold: 0.0,
            left: 0,
            right: 0,
        });
        let left = nodes.len();
        nodes.push(Node::Leaf {
            label: left_label,
            counts: ClassCounts::new(),
        });
        let right = nodes.len();
        nodes.push(Node::Leaf {
            label: right_label,
            counts: ClassCounts::new(),
        });
        nodes[slot] = Node::Internal {
            feature: first.variable,
            threshold: 0.0,
            left,
            right,
        };
        return slot;
    }
    // ⟦l ∨ ψ'⟧: the branch where l is true short-circuits to +1, the other
    // branch recurses into the rest of the clause.
    let slot = nodes.len();
    nodes.push(Node::Internal {
        feature: first.variable,
        threshold: 0.0,
        left: 0,
        right: 0,
    });
    if first.negated {
        // l = ¬x: x <= 0 (false) satisfies the literal → left leaf +1.
        let left = nodes.len();
        nodes.push(Node::Leaf {
            label: Label::Positive,
            counts: ClassCounts::new(),
        });
        let right = build_clause(rest, nodes);
        nodes[slot] = Node::Internal {
            feature: first.variable,
            threshold: 0.0,
            left,
            right,
        };
    } else {
        // l = x: x > 0 (true) satisfies the literal → right leaf +1.
        let left = build_clause(rest, nodes);
        let right = nodes.len();
        nodes.push(Node::Leaf {
            label: Label::Positive,
            counts: ClassCounts::new(),
        });
        nodes[slot] = Node::Internal {
            feature: first.variable,
            threshold: 0.0,
            left,
            right,
        };
    }
    slot
}

/// Converts a 3CNF formula into a tree ensemble (`⟦φ⟧`), one tree per
/// clause.
pub fn cnf_to_ensemble(formula: &Cnf) -> RandomForest {
    assert!(
        !formula.clauses.is_empty(),
        "the reduction needs at least one clause"
    );
    let trees = formula
        .clauses
        .iter()
        .map(|clause| clause_to_tree(clause, formula.num_variables))
        .collect();
    RandomForest::from_trees(trees)
}

/// Translates a boolean assignment into a feature vector for the reduced
/// ensemble (`true` → `+1.0`, `false` → `-1.0`).
pub fn assignment_to_instance(assignment: &[bool]) -> Vec<f64> {
    assignment.iter().map(|&value| if value { 1.0 } else { -1.0 }).collect()
}

/// Translates a forged instance back into a boolean assignment
/// (`x[j] > 0` → `true`), as described in the proof of Theorem 1.
pub fn instance_to_assignment(instance: &[f64]) -> Vec<bool> {
    instance.iter().map(|&value| value > 0.0).collect()
}

/// Result of deciding a formula through the forgery reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum ReductionOutcome {
    /// The forgery solver found an instance; the translated assignment is
    /// returned.
    Satisfiable(Vec<bool>),
    /// The forgery problem is unsatisfiable, hence so is the formula.
    Unsatisfiable,
    /// The solver budget was exhausted before a conclusion.
    Unknown,
}

/// Decides satisfiability of a 3CNF formula by running the forgery solver
/// on the reduced ensemble with label `+1` and the all-zeros signature,
/// exactly as in the proof of Theorem 1.
pub fn solve_via_forgery(formula: &Cnf, config: SolverConfig) -> ReductionOutcome {
    let ensemble = cnf_to_ensemble(formula);
    let index = LeafIndex::new(&ensemble);
    let query = ForgeryQuery {
        required: vec![Label::Positive; ensemble.num_trees()],
        reference: None,
    };
    let solver = ForgerySolver::new(config.unconstrained_domain());
    match solver.solve(&index, &query) {
        ForgeryOutcome::Forged { instance, .. } => {
            ReductionOutcome::Satisfiable(instance_to_assignment(&instance))
        }
        ForgeryOutcome::Unsatisfiable { .. } => ReductionOutcome::Unsatisfiable,
        ForgeryOutcome::BudgetExhausted { .. } => ReductionOutcome::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{DpllSolver, SatResult};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_example_reduction_matches_figure_2_shape() {
        let formula = Cnf::paper_example();
        let ensemble = cnf_to_ensemble(&formula);
        assert_eq!(ensemble.num_trees(), 2);
        // First clause (x0 ∨ x1): depth 2, second clause (x1 ∨ x2 ∨ ¬x3): depth 3.
        assert_eq!(ensemble.trees()[0].depth(), 2);
        assert_eq!(ensemble.trees()[1].depth(), 3);
    }

    #[test]
    fn ensemble_prediction_agrees_with_clause_semantics() {
        let formula = Cnf::paper_example();
        let ensemble = cnf_to_ensemble(&formula);
        // Exhaustively compare tree predictions with clause truth values.
        for bits in 0..16u32 {
            let assignment: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            let instance = assignment_to_instance(&assignment);
            for (tree, clause) in ensemble.trees().iter().zip(&formula.clauses) {
                let predicted_true = tree.predict(&instance) == Label::Positive;
                assert_eq!(
                    predicted_true,
                    clause.eval(&assignment),
                    "tree and clause disagree on {assignment:?}"
                );
            }
        }
    }

    #[test]
    fn satisfiable_formulas_are_forgeable_and_vice_versa() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut seen_sat = 0;
        let mut seen_unsat = 0;
        for round in 0..40 {
            let num_variables = 4 + round % 4;
            // Over-constrained ratios produce a healthy mix of SAT/UNSAT.
            let num_clauses = 3 + (round % 9) * 3;
            let formula = Cnf::random(num_variables, num_clauses, &mut rng);
            let ground_truth = DpllSolver.solve(&formula);
            let via_forgery = solve_via_forgery(&formula, SolverConfig::default());
            match (ground_truth, via_forgery) {
                (SatResult::Satisfiable(_), ReductionOutcome::Satisfiable(assignment)) => {
                    assert!(
                        formula.eval(&assignment),
                        "forgery-derived assignment must satisfy the formula"
                    );
                    seen_sat += 1;
                }
                (SatResult::Unsatisfiable, ReductionOutcome::Unsatisfiable) => {
                    seen_unsat += 1;
                }
                (truth, reduced) => {
                    panic!("reduction disagreed with DPLL: {truth:?} vs {reduced:?}");
                }
            }
        }
        assert!(
            seen_sat > 0 && seen_unsat > 0,
            "test should exercise both outcomes (sat={seen_sat}, unsat={seen_unsat})"
        );
    }

    #[test]
    fn round_trip_translations_are_inverse_on_sign() {
        let assignment = vec![true, false, true];
        let instance = assignment_to_instance(&assignment);
        assert_eq!(instance, vec![1.0, -1.0, 1.0]);
        assert_eq!(instance_to_assignment(&instance), assignment);
    }

    #[test]
    fn unsatisfiable_formula_yields_unsatisfiable_forgery() {
        let formula = Cnf::new(
            1,
            vec![
                Clause::new(vec![Literal::positive(0)]),
                Clause::new(vec![Literal::negative(0)]),
            ],
        );
        assert_eq!(
            solve_via_forgery(&formula, SolverConfig::default()),
            ReductionOutcome::Unsatisfiable
        );
    }
}
