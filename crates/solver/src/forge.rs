//! Solver for ensemble output-pattern constraints (the watermark forgery
//! problem).
//!
//! Given a tree ensemble `T`, a required prediction per tree, and optional
//! locality constraints (the `[0, 1]` data domain and an L∞ ball around a
//! reference instance), the solver searches for an instance `x` such that
//! every tree produces exactly its required prediction. This is the
//! satisfiability problem the paper encodes into Z3 (Section 4.2.2); the
//! implementation here is a purpose-built DPLL-style branch-and-prune over
//! one-leaf-box-per-tree choices with forward checking, a fail-first
//! variable order and explicit node/time budgets.

use crate::interval::BoxRegion;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use wdte_data::Label;
use wdte_trees::RandomForest;

/// Pre-computed leaf geometry of a forest: for every tree, the list of
/// `(leaf box, leaf label)` pairs. Building the index is linear in the
/// number of leaves and is reused across many solver queries.
#[derive(Debug, Clone)]
pub struct LeafIndex {
    per_tree: Vec<Vec<(BoxRegion, Label)>>,
    num_features: usize,
}

impl LeafIndex {
    /// Builds the leaf index of a forest.
    pub fn new(forest: &RandomForest) -> Self {
        let num_features = forest.num_features();
        let per_tree = forest
            .trees()
            .iter()
            .map(|tree| {
                tree.leaf_regions()
                    .into_iter()
                    .map(|region| {
                        let mut bounds = region.bounds;
                        bounds.resize(num_features, (f64::NEG_INFINITY, f64::INFINITY));
                        (BoxRegion::from_tree_bounds(&bounds), region.label)
                    })
                    .collect()
            })
            .collect();
        Self {
            per_tree,
            num_features,
        }
    }

    /// Number of trees indexed.
    pub fn num_trees(&self) -> usize {
        self.per_tree.len()
    }

    /// Number of features of the underlying forest.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Leaf boxes of one tree.
    pub fn tree_leaves(&self, tree: usize) -> &[(BoxRegion, Label)] {
        &self.per_tree[tree]
    }

    /// Total number of leaves across all trees.
    pub fn total_leaves(&self) -> usize {
        self.per_tree.iter().map(|leaves| leaves.len()).sum()
    }
}

/// Resource budget and search-space configuration of the forgery solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Maximum number of search nodes (leaf-choice expansions) explored
    /// before giving up.
    pub max_nodes: u64,
    /// Wall-clock budget in milliseconds before giving up.
    pub time_budget_ms: u64,
    /// Closed data domain applied to every feature (`None` leaves features
    /// unconstrained, as required by the 3SAT reduction whose variables use
    /// the sign of the feature value).
    pub domain: Option<(f64, f64)>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            max_nodes: 2_000_000,
            time_budget_ms: 10_000,
            domain: Some((0.0, 1.0)),
        }
    }
}

impl SolverConfig {
    /// A tight budget for unit tests and quick experiments.
    pub fn fast() -> Self {
        Self {
            max_nodes: 200_000,
            time_budget_ms: 1_000,
            domain: Some((0.0, 1.0)),
        }
    }

    /// No data-domain constraint (used by the 3SAT reduction).
    pub fn unconstrained_domain(mut self) -> Self {
        self.domain = None;
        self
    }
}

/// A forgery query: the required per-tree predictions plus an optional
/// locality constraint around a reference instance.
#[derive(Debug, Clone)]
pub struct ForgeryQuery<'a> {
    /// Required prediction of each tree, in tree order.
    pub required: Vec<Label>,
    /// Optional `(reference instance, epsilon)` L∞ locality constraint.
    pub reference: Option<(&'a [f64], f64)>,
}

impl<'a> ForgeryQuery<'a> {
    /// Builds the per-tree required predictions from a signature bit-string
    /// and a target label, following the paper's binary convention: tree
    /// `i` must predict `label` iff bit `i` is 0, and the opposite label
    /// otherwise. Equivalent to [`Self::from_signature_bits_k`] with
    /// `num_classes = 2`.
    pub fn from_signature_bits(
        bits: &[bool],
        label: Label,
        reference: Option<(&'a [f64], f64)>,
    ) -> Self {
        Self::from_signature_bits_k(bits, label, 2, reference)
    }

    /// Builds the per-tree required predictions for a `num_classes`-class
    /// label space: tree `i` must predict `label` iff bit `i` is 0, and
    /// the deterministically rotated label `(c + 1) mod k` otherwise —
    /// the same rotation the watermarking embed and verify paths use.
    pub fn from_signature_bits_k(
        bits: &[bool],
        label: Label,
        num_classes: usize,
        reference: Option<(&'a [f64], f64)>,
    ) -> Self {
        let required = bits
            .iter()
            .map(|&bit| if bit { label.rotated(num_classes) } else { label })
            .collect();
        Self { required, reference }
    }
}

/// Outcome of a forgery attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ForgeryOutcome {
    /// A satisfying instance was found.
    Forged {
        /// The forged instance.
        instance: Vec<f64>,
        /// Number of search nodes explored.
        nodes_explored: u64,
    },
    /// The constraint system is unsatisfiable (exhaustive search finished
    /// without a solution).
    Unsatisfiable {
        /// Number of search nodes explored.
        nodes_explored: u64,
    },
    /// The node or time budget was exhausted before a conclusion.
    BudgetExhausted {
        /// Number of search nodes explored.
        nodes_explored: u64,
    },
}

impl ForgeryOutcome {
    /// The forged instance, if any.
    pub fn instance(&self) -> Option<&[f64]> {
        match self {
            ForgeryOutcome::Forged { instance, .. } => Some(instance),
            _ => None,
        }
    }

    /// `true` when a satisfying instance was found.
    pub fn is_forged(&self) -> bool {
        matches!(self, ForgeryOutcome::Forged { .. })
    }
}

/// DPLL-style solver over leaf-box choices.
#[derive(Debug, Clone, Default)]
pub struct ForgerySolver {
    /// Search configuration.
    pub config: SolverConfig,
}

impl ForgerySolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SolverConfig) -> Self {
        Self { config }
    }

    /// Attempts to find an instance realizing the required per-tree
    /// predictions.
    ///
    /// # Panics
    /// Panics if `query.required.len()` does not match the number of trees
    /// in the index, or the reference instance has the wrong
    /// dimensionality.
    pub fn solve(&self, index: &LeafIndex, query: &ForgeryQuery<'_>) -> ForgeryOutcome {
        assert_eq!(
            query.required.len(),
            index.num_trees(),
            "one required prediction per tree is needed"
        );
        let dims = index.num_features();

        // Base box: data domain intersected with the L∞ ball.
        let mut base = match self.config.domain {
            Some((lo, hi)) => BoxRegion::cube(dims, lo, hi),
            None => BoxRegion::unbounded(dims),
        };
        if let Some((reference, epsilon)) = query.reference {
            assert_eq!(
                reference.len(),
                dims,
                "reference instance dimensionality mismatch"
            );
            base = base.intersect(&BoxRegion::linf_ball(reference, epsilon));
            if !base.is_feasible() {
                return ForgeryOutcome::Unsatisfiable { nodes_explored: 0 };
            }
        }

        // Candidate leaf boxes per tree: leaves with the required label that
        // still intersect the base box.
        let mut candidates: Vec<Vec<BoxRegion>> = Vec::with_capacity(index.num_trees());
        for (tree, &required_label) in query.required.iter().enumerate() {
            let boxes: Vec<BoxRegion> = index
                .tree_leaves(tree)
                .iter()
                .filter(|(_, label)| *label == required_label)
                .filter_map(|(region, _)| region.intersect_feasible(&base))
                .collect();
            if boxes.is_empty() {
                return ForgeryOutcome::Unsatisfiable { nodes_explored: 0 };
            }
            candidates.push(boxes);
        }

        // Fail-first ordering: constrain the trees with the fewest
        // compatible leaves first.
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by_key(|&tree| candidates[tree].len());

        let deadline = Instant::now() + Duration::from_millis(self.config.time_budget_ms);
        let mut search = Search {
            candidates: &candidates,
            order: &order,
            reference: query.reference.map(|(r, _)| r),
            max_nodes: self.config.max_nodes,
            deadline,
            nodes_explored: 0,
            budget_hit: false,
        };
        match search.descend(0, base) {
            Some(instance) => ForgeryOutcome::Forged {
                instance,
                nodes_explored: search.nodes_explored,
            },
            None if search.budget_hit => ForgeryOutcome::BudgetExhausted {
                nodes_explored: search.nodes_explored,
            },
            None => ForgeryOutcome::Unsatisfiable {
                nodes_explored: search.nodes_explored,
            },
        }
    }
}

struct Search<'a> {
    candidates: &'a [Vec<BoxRegion>],
    order: &'a [usize],
    reference: Option<&'a [f64]>,
    max_nodes: u64,
    deadline: Instant,
    nodes_explored: u64,
    budget_hit: bool,
}

impl<'a> Search<'a> {
    /// Depth-first search choosing one leaf box for the `position`-th tree
    /// in the fail-first order, keeping the running intersection feasible.
    fn descend(&mut self, position: usize, current: BoxRegion) -> Option<Vec<f64>> {
        if position == self.order.len() {
            return current.witness(self.reference);
        }
        let tree = self.order[position];
        for candidate in &self.candidates[tree] {
            self.nodes_explored += 1;
            if self.nodes_explored > self.max_nodes {
                self.budget_hit = true;
                return None;
            }
            // Checking the clock on every node would be wasteful; every
            // 1024 nodes keeps the overhead negligible while still
            // enforcing the budget tightly enough for the experiments.
            if self.nodes_explored.is_multiple_of(1024) && Instant::now() > self.deadline {
                self.budget_hit = true;
                return None;
            }
            if let Some(narrowed) = current.intersect_feasible(candidate) {
                if let Some(solution) = self.descend(position + 1, narrowed) {
                    return Some(solution);
                }
                if self.budget_hit {
                    return None;
                }
            }
        }
        None
    }
}

/// Convenience helper verifying that an instance actually realizes the
/// required per-tree predictions on the given forest.
pub fn satisfies_pattern(forest: &RandomForest, instance: &[f64], required: &[Label]) -> bool {
    forest.predict_all(instance).iter().zip(required).all(|(got, want)| got == want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::{ClassCounts, SyntheticSpec};
    use wdte_trees::{DecisionTree, ForestParams, Node};

    /// A stump predicting Positive iff x[feature] > threshold.
    fn stump(num_features: usize, feature: usize, threshold: f64) -> DecisionTree {
        DecisionTree::from_nodes(
            vec![
                Node::Internal {
                    feature,
                    threshold,
                    left: 1,
                    right: 2,
                },
                Node::Leaf {
                    label: Label::Negative,
                    counts: ClassCounts::new(),
                },
                Node::Leaf {
                    label: Label::Positive,
                    counts: ClassCounts::new(),
                },
            ],
            num_features,
        )
    }

    #[test]
    fn solves_the_paper_example_ensemble() {
        // Figure 1 ensemble: tree 1 = x1<=5 ? (x2<=3 ? +1 : -1) : (x3<=7 ? -1 : +1)
        //                    tree 2 = x1<=2 ? (x2<=4 ? +1 : -1) : (x3<=6 ? -1 : +1)
        let tree1 = DecisionTree::from_nodes(
            vec![
                Node::Internal {
                    feature: 0,
                    threshold: 5.0,
                    left: 1,
                    right: 4,
                },
                Node::Internal {
                    feature: 1,
                    threshold: 3.0,
                    left: 2,
                    right: 3,
                },
                Node::Leaf {
                    label: Label::Positive,
                    counts: ClassCounts::new(),
                },
                Node::Leaf {
                    label: Label::Negative,
                    counts: ClassCounts::new(),
                },
                Node::Internal {
                    feature: 2,
                    threshold: 7.0,
                    left: 5,
                    right: 6,
                },
                Node::Leaf {
                    label: Label::Negative,
                    counts: ClassCounts::new(),
                },
                Node::Leaf {
                    label: Label::Positive,
                    counts: ClassCounts::new(),
                },
            ],
            3,
        );
        let tree2 = DecisionTree::from_nodes(
            vec![
                Node::Internal {
                    feature: 0,
                    threshold: 2.0,
                    left: 1,
                    right: 4,
                },
                Node::Internal {
                    feature: 1,
                    threshold: 4.0,
                    left: 2,
                    right: 3,
                },
                Node::Leaf {
                    label: Label::Positive,
                    counts: ClassCounts::new(),
                },
                Node::Leaf {
                    label: Label::Negative,
                    counts: ClassCounts::new(),
                },
                Node::Internal {
                    feature: 2,
                    threshold: 6.0,
                    left: 5,
                    right: 6,
                },
                Node::Leaf {
                    label: Label::Negative,
                    counts: ClassCounts::new(),
                },
                Node::Leaf {
                    label: Label::Positive,
                    counts: ClassCounts::new(),
                },
            ],
            3,
        );
        let forest = RandomForest::from_trees(vec![tree1, tree2]);
        let index = LeafIndex::new(&forest);
        // Fake signature 01 with target +1: tree 1 must predict +1, tree 2
        // must predict -1. The paper's satisfying assignment is (4, 3, 5).
        let query = ForgeryQuery {
            required: vec![Label::Positive, Label::Negative],
            reference: None,
        };
        let solver = ForgerySolver::new(SolverConfig::default().unconstrained_domain());
        let outcome = solver.solve(&index, &query);
        let instance = outcome.instance().expect("the paper's example is satisfiable");
        assert!(satisfies_pattern(&forest, instance, &query.required));
    }

    #[test]
    fn detects_unsatisfiable_patterns() {
        // Two identical stumps cannot disagree with each other.
        let forest = RandomForest::from_trees(vec![stump(1, 0, 0.5), stump(1, 0, 0.5)]);
        let index = LeafIndex::new(&forest);
        let query = ForgeryQuery {
            required: vec![Label::Positive, Label::Negative],
            reference: None,
        };
        let solver = ForgerySolver::default();
        let outcome = solver.solve(&index, &query);
        assert!(matches!(outcome, ForgeryOutcome::Unsatisfiable { .. }));
    }

    #[test]
    fn epsilon_ball_restricts_the_search() {
        let forest = RandomForest::from_trees(vec![stump(2, 0, 0.5)]);
        let index = LeafIndex::new(&forest);
        let reference = [0.1, 0.3];
        // Requiring the positive side (x0 > 0.5) within eps=0.1 of x0=0.1 is impossible…
        let tight = ForgeryQuery {
            required: vec![Label::Positive],
            reference: Some((&reference, 0.1)),
        };
        let solver = ForgerySolver::default();
        assert!(matches!(
            solver.solve(&index, &tight),
            ForgeryOutcome::Unsatisfiable { .. }
        ));
        // …but possible with eps=0.6, and the witness stays inside the ball
        // and inside [0, 1].
        let loose = ForgeryQuery {
            required: vec![Label::Positive],
            reference: Some((&reference, 0.6)),
        };
        let outcome = solver.solve(&index, &loose);
        let instance = outcome.instance().expect("solvable with a larger ball");
        assert!(instance[0] > 0.5 && instance[0] <= 0.7 + 1e-9);
        assert!((instance[1] - 0.3).abs() <= 0.6 + 1e-9);
        assert!(satisfies_pattern(&forest, instance, &[Label::Positive]));
    }

    #[test]
    fn witness_prefers_reference_coordinates_on_untouched_features() {
        let forest = RandomForest::from_trees(vec![stump(3, 0, 0.5)]);
        let index = LeafIndex::new(&forest);
        let reference = [0.2, 0.77, 0.33];
        let query = ForgeryQuery {
            required: vec![Label::Positive],
            reference: Some((&reference, 0.9)),
        };
        let outcome = ForgerySolver::default().solve(&index, &query);
        let instance = outcome.instance().unwrap();
        // Features 1 and 2 are untested by the stump: they keep the
        // reference values exactly, minimizing visual distortion.
        assert_eq!(instance[1], 0.77);
        assert_eq!(instance[2], 0.33);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // A real forest with a tiny node budget: the solver must give up
        // rather than hang.
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.4)
            .generate(&mut SmallRng::seed_from_u64(1));
        let forest = RandomForest::fit(
            &dataset,
            &ForestParams::with_trees(20),
            &mut SmallRng::seed_from_u64(2),
        );
        let index = LeafIndex::new(&forest);
        // Alternating required labels make the pattern hard to realize.
        let required: Vec<Label> = (0..forest.num_trees())
            .map(|i| {
                if i % 2 == 0 {
                    Label::Positive
                } else {
                    Label::Negative
                }
            })
            .collect();
        let reference = vec![0.5; dataset.num_features()];
        let query = ForgeryQuery {
            required,
            reference: Some((&reference, 0.05)),
        };
        let solver = ForgerySolver::new(SolverConfig {
            max_nodes: 50,
            time_budget_ms: 10_000,
            domain: Some((0.0, 1.0)),
        });
        let outcome = solver.solve(&index, &query);
        // With 50 nodes we either conclude quickly or hit the budget; both
        // are acceptable, but a Forged result must actually satisfy the
        // pattern.
        if let ForgeryOutcome::Forged { instance, .. } = &outcome {
            assert!(satisfies_pattern(&forest, instance, &query.required));
        }
    }

    #[test]
    fn forged_instances_on_trained_forests_satisfy_their_pattern() {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.5)
            .generate(&mut SmallRng::seed_from_u64(5));
        let forest = RandomForest::fit(
            &dataset,
            &ForestParams::with_trees(9),
            &mut SmallRng::seed_from_u64(6),
        );
        let index = LeafIndex::new(&forest);
        assert_eq!(index.num_trees(), 9);
        assert!(index.total_leaves() >= 9);
        // Ask every tree to agree with its own prediction of a real
        // instance: trivially satisfiable, and the solver must confirm it.
        let reference: Vec<f64> = dataset.instance(0).to_vec();
        let required = forest.predict_all(&reference);
        let query = ForgeryQuery {
            required: required.clone(),
            reference: Some((&reference, 0.2)),
        };
        let outcome = ForgerySolver::default().solve(&index, &query);
        let instance = outcome.instance().expect("self-consistent pattern must be satisfiable");
        assert!(satisfies_pattern(&forest, instance, &required));
    }

    #[test]
    fn from_signature_bits_maps_bits_to_required_labels() {
        let query = ForgeryQuery::from_signature_bits(&[false, true, false], Label::Positive, None);
        assert_eq!(
            query.required,
            vec![Label::Positive, Label::Negative, Label::Positive]
        );
        let query = ForgeryQuery::from_signature_bits(&[true], Label::Negative, None);
        assert_eq!(query.required, vec![Label::Positive]);
    }
}
