//! # wdte-solver
//!
//! Constraint-solving substrate for the *Watermarking Decision Tree
//! Ensembles* reproduction, standing in for the Z3 SMT solver used by the
//! paper's forgery experiments:
//!
//! * [`interval`] — intervals and axis-aligned boxes with explicit endpoint
//!   openness, matching the geometry of decision-tree prediction paths.
//! * [`forge`] — a DPLL-style branch-and-prune solver that searches for an
//!   instance realizing a required per-tree output pattern, optionally
//!   within an L∞ ball of a reference instance (the watermark forgery
//!   problem of Definition 1).
//! * [`sat`] — 3CNF formulas and a reference DPLL SAT solver.
//! * [`reduction`] — the 3SAT → forgery reduction of Theorem 1, used to
//!   validate the NP-hardness construction end-to-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forge;
pub mod interval;
pub mod reduction;
pub mod sat;

pub use forge::{
    satisfies_pattern, ForgeryOutcome, ForgeryQuery, ForgerySolver, LeafIndex, SolverConfig,
};
pub use interval::{BoxRegion, Interval};
pub use reduction::{
    assignment_to_instance, clause_to_tree, cnf_to_ensemble, instance_to_assignment, solve_via_forgery,
    ReductionOutcome,
};
pub use sat::{Clause, Cnf, DpllSolver, Literal, SatResult};

/// Commonly used types, re-exported for `use wdte_solver::prelude::*`.
pub mod prelude {
    pub use crate::forge::{ForgeryOutcome, ForgeryQuery, ForgerySolver, LeafIndex, SolverConfig};
    pub use crate::interval::{BoxRegion, Interval};
    pub use crate::reduction::{cnf_to_ensemble, solve_via_forgery, ReductionOutcome};
    pub use crate::sat::{Clause, Cnf, DpllSolver, Literal, SatResult};
}
