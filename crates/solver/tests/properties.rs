//! Property-based tests for the constraint-solving substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_data::SyntheticSpec;
use wdte_solver::{
    cnf_to_ensemble, instance_to_assignment, satisfies_pattern, BoxRegion, Cnf, DpllSolver,
    ForgeryOutcome, ForgeryQuery, ForgerySolver, Interval, LeafIndex, SatResult, SolverConfig,
};
use wdte_trees::{ForestParams, RandomForest};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interval_intersection_is_sound(
        a_lo in -5.0f64..5.0, a_span in 0.0f64..5.0,
        b_lo in -5.0f64..5.0, b_span in 0.0f64..5.0,
        probe in -10.0f64..10.0
    ) {
        let a = Interval::closed(a_lo, a_lo + a_span);
        let b = Interval::tree_path(b_lo, b_lo + b_span);
        let merged = a.intersect(&b);
        // Soundness: a point is in the intersection iff it is in both.
        prop_assert_eq!(merged.contains(probe), a.contains(probe) && b.contains(probe));
    }

    #[test]
    fn box_witness_is_always_inside_the_box(
        lows in proptest::collection::vec(-2.0f64..2.0, 4),
        spans in proptest::collection::vec(0.01f64..2.0, 4)
    ) {
        let intervals: Vec<Interval> = lows
            .iter()
            .zip(&spans)
            .map(|(&lo, &span)| Interval::closed(lo, lo + span))
            .collect();
        let region = BoxRegion::new(intervals);
        let witness = region.witness(None).expect("non-degenerate boxes are feasible");
        prop_assert!(region.contains(&witness));
    }

    #[test]
    fn forged_solutions_always_satisfy_their_pattern(seed in 0u64..150) {
        // Ask the solver to reproduce the prediction pattern of a real
        // instance (always satisfiable); whatever it returns must satisfy
        // the pattern exactly.
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
        let forest = RandomForest::fit(&dataset, &ForestParams::with_trees(5), &mut rng);
        let index = LeafIndex::new(&forest);
        let reference: Vec<f64> = dataset.instance(0).to_vec();
        let required = forest.predict_all(&reference);
        let query = ForgeryQuery { required: required.clone(), reference: Some((&reference, 0.3)) };
        match ForgerySolver::new(SolverConfig::fast()).solve(&index, &query) {
            ForgeryOutcome::Forged { instance, .. } => {
                prop_assert!(satisfies_pattern(&forest, &instance, &required));
                for (forged, original) in instance.iter().zip(&reference) {
                    prop_assert!((forged - original).abs() <= 0.3 + 1e-9);
                }
            }
            ForgeryOutcome::Unsatisfiable { .. } => {
                prop_assert!(false, "a self-consistent pattern cannot be unsatisfiable");
            }
            ForgeryOutcome::BudgetExhausted { .. } => {
                // Acceptable under the fast budget; nothing to check.
            }
        }
    }

    #[test]
    fn reduction_preserves_satisfiability_on_random_formulas(
        seed in 0u64..300, variables in 3usize..7, clauses in 1usize..15
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let formula = Cnf::random(variables, clauses, &mut rng);
        let dpll_sat = matches!(DpllSolver.solve(&formula), SatResult::Satisfiable(_));
        let ensemble = cnf_to_ensemble(&formula);
        let index = LeafIndex::new(&ensemble);
        let query = ForgeryQuery {
            required: vec![wdte_data::Label::Positive; ensemble.num_trees()],
            reference: None,
        };
        let solver = ForgerySolver::new(SolverConfig::default().unconstrained_domain());
        match solver.solve(&index, &query) {
            ForgeryOutcome::Forged { instance, .. } => {
                prop_assert!(dpll_sat, "forgery found a model for an unsatisfiable formula");
                prop_assert!(formula.eval(&instance_to_assignment(&instance)));
            }
            ForgeryOutcome::Unsatisfiable { .. } => prop_assert!(!dpll_sat),
            ForgeryOutcome::BudgetExhausted { .. } => {}
        }
    }
}
