//! Integration suite for the judge-as-a-service layer: loopback
//! round-trips that must be bit-identical to in-process resolution, and
//! the protocol's negative paths (malformed frames, hostile length
//! prefixes, future versions, half-closed sockets).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use wdte_core::error::WatermarkError;
use wdte_core::proto::{self, Request, Response, WireFault};
use wdte_core::{
    Dispute, DisputeService, OwnershipClaim, Signature, WatermarkConfig, WatermarkOutcome, Watermarker,
};
use wdte_data::{Dataset, SyntheticSpec};
use wdte_server::{ClientConfig, DisputeClient, JudgeServer, RunningServer, ServerConfig};

fn embedded(seed: u64) -> (Dataset, WatermarkOutcome) {
    let dataset = SyntheticSpec::breast_cancer_like()
        .scaled(0.6)
        .generate(&mut SmallRng::seed_from_u64(seed));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
    let (train, test) = dataset.split_stratified(0.75, &mut rng);
    let signature = Signature::random(12, 0.5, &mut rng);
    let watermarker = Watermarker::new(WatermarkConfig {
        num_trees: 12,
        ..WatermarkConfig::fast()
    });
    let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
    (test, outcome)
}

fn claim_for(outcome: &WatermarkOutcome, test: &Dataset) -> OwnershipClaim {
    OwnershipClaim::new(
        outcome.signature.clone(),
        outcome.trigger_set.clone(),
        test.clone(),
    )
}

fn start_server(service: Arc<DisputeService>) -> RunningServer {
    JudgeServer::bind("127.0.0.1:0", service, ServerConfig::default())
        .expect("loopback bind succeeds")
        .spawn()
}

/// Acceptance gate of the network layer: a 64-claim docket resolved
/// through `DisputeClient` is bit-identical to `resolve_many` in process.
#[test]
fn loopback_docket_is_bit_identical_to_in_process_resolution() {
    let (test, outcome) = embedded(71);
    let genuine = claim_for(&outcome, &test);
    let mut rng = SmallRng::seed_from_u64(99);
    let forged = OwnershipClaim::new(
        Signature::random(12, 0.5, &mut rng),
        test.select(&test.sample_indices(outcome.trigger_set.len(), &mut rng)).unwrap(),
        test.clone(),
    );
    let docket: Vec<Dispute> = (0..64)
        .map(|i| {
            let claim = if i % 2 == 0 {
                genuine.clone()
            } else {
                forged.clone()
            };
            // A few disputes name an unregistered model so typed errors
            // cross the wire too.
            let model_id = if i % 13 == 5 { "ghost" } else { "deployment" };
            Dispute::new(model_id, claim)
        })
        .collect();

    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("deployment", &outcome.model);
    let reference = service.resolve_many(&docket);

    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    let served = client.resolve_docket(&docket).unwrap();

    assert_eq!(served.len(), 64);
    assert_eq!(
        served, reference,
        "wire and in-process verdicts must be bit-identical"
    );
    assert!(served.iter().filter_map(|v| v.as_ref().ok()).any(|r| r.verified));
    assert!(served.iter().any(|v| matches!(
        v,
        Err(WatermarkError::UnknownModel { model_id }) if model_id == "ghost"
    )));
    // The docket never triggered extra compilations server-side.
    assert_eq!(service.compile_count(), 1);
    server.shutdown().unwrap();
}

#[test]
fn full_client_surface_round_trips() {
    let (test, outcome) = embedded(72);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().max_docket(4).build().unwrap());
    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();

    let pong = client.ping().unwrap();
    assert_eq!(pong.protocol_version, proto::PROTOCOL_VERSION);
    assert_eq!(pong.models_registered, 0);

    assert_eq!(client.register_model("m", &outcome.model).unwrap(), 12);
    assert_eq!(client.register_model("aaa", &outcome.model).unwrap(), 12);
    assert_eq!(client.list_models().unwrap(), ["aaa", "m"], "listings are sorted");

    let report = client.resolve("m", &claim).unwrap();
    assert_eq!(report, service.resolve("m", &claim).unwrap());
    assert!(report.verified);

    // Typed errors reconstruct on the client side.
    assert!(matches!(
        client.resolve("ghost", &claim).unwrap_err(),
        WatermarkError::UnknownModel { model_id } if model_id == "ghost"
    ));
    let oversized: Vec<Dispute> = (0..5).map(|_| Dispute::new("m", claim.clone())).collect();
    assert!(matches!(
        client.resolve_docket(&oversized).unwrap_err(),
        WatermarkError::DocketTooLarge { size: 5, max: 4 }
    ));

    assert!(client.deregister("aaa").unwrap());
    assert!(
        !client.deregister("aaa").unwrap(),
        "second deregister reports absence"
    );
    assert_eq!(client.list_models().unwrap(), ["m"]);
    // The connection survives all of the above on one socket.
    assert!(client.resolve("m", &claim).unwrap().verified);
    server.shutdown().unwrap();
}

#[test]
fn register_over_wire_matches_local_registration() {
    let (test, outcome) = embedded(73);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    client.register_model("wire", &outcome.model).unwrap();

    // The model deserialized server-side behaves exactly like the local one.
    let local = DisputeService::builder().build().unwrap();
    local.register("wire", &outcome.model);
    assert_eq!(
        client.resolve("wire", &claim).unwrap(),
        local.resolve("wire", &claim).unwrap()
    );
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Negative paths, driven over a raw socket
// ---------------------------------------------------------------------------

fn raw_connection(server: &RunningServer) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

fn read_error_response(stream: &mut TcpStream) -> WireFault {
    let mut reader = std::io::BufReader::new(stream);
    let response: Response = proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
        .expect("server answers before closing")
        .expect("server answers before closing");
    match response {
        Response::Error { fault } => fault,
        other => panic!("expected an error response, got {other:?}"),
    }
}

#[test]
fn bad_magic_gets_an_error_response_and_a_closed_connection() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    assert!(matches!(
        read_error_response(&mut stream),
        WireFault::BadRequest { .. }
    ));
    // The server closed its side: the next read is EOF.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    server.shutdown().unwrap();
}

#[test]
fn future_protocol_version_is_refused_with_a_structured_fault() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    let mut frame = proto::encode_frame(&Request::Ping).unwrap();
    frame[4..6].copy_from_slice(&999u16.to_le_bytes());
    stream.write_all(&frame).unwrap();
    match read_error_response(&mut stream) {
        WireFault::UnsupportedProtocolVersion { found, supported } => {
            assert_eq!(found, 999);
            assert_eq!(supported, proto::PROTOCOL_VERSION);
        }
        other => panic!("expected a version fault, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn oversized_length_prefix_is_refused_without_reading_the_payload() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = JudgeServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            max_frame_bytes: 1024,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn();
    let mut stream = raw_connection(&server);
    let mut header = Vec::new();
    header.extend_from_slice(proto::PROTO_MAGIC);
    header.extend_from_slice(&proto::PROTOCOL_VERSION.to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    stream.write_all(&header).unwrap();
    // No payload is ever sent — the server must answer from the header
    // alone instead of waiting for 4 GiB.
    match read_error_response(&mut stream) {
        WireFault::FrameTooLarge { size, max } => {
            assert_eq!(size, u64::from(u32::MAX));
            assert_eq!(max, 1024);
        }
        other => panic!("expected a frame-size fault, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn half_closed_socket_mid_frame_does_not_wedge_the_server() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = start_server(Arc::clone(&service));

    // A client sends half a frame, then closes its write side.
    let frame = proto::encode_frame(&Request::ListModels).unwrap();
    let mut stream = raw_connection(&server);
    stream.write_all(&frame[..frame.len() / 2]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    // The server detects the truncation and answers a BadRequest fault
    // (best effort) before closing — it must not hang on the missing half.
    assert!(matches!(
        read_error_response(&mut stream),
        WireFault::BadRequest { .. }
    ));

    // And the server is still fully alive for the next client.
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    assert_eq!(client.ping().unwrap().protocol_version, proto::PROTOCOL_VERSION);
    server.shutdown().unwrap();
}

#[test]
fn half_closed_socket_between_frames_is_a_clean_goodbye() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    // A complete ping, then a write-side shutdown: the server answers the
    // ping and closes without inventing an error.
    stream.write_all(&proto::encode_frame(&Request::Ping).unwrap()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reader = std::io::BufReader::new(&mut stream);
    let response: Response = proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
        .unwrap()
        .expect("the ping sent before the shutdown is answered");
    assert!(matches!(response, Response::Pong { .. }));
    assert!(
        proto::read_message::<Response, _>(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .is_none(),
        "no further frames: the server closes cleanly"
    );
    server.shutdown().unwrap();
}

#[test]
fn garbage_payload_in_a_valid_frame_keeps_the_connection_usable() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    // A well-framed payload that is not a decodable Request: framing stays
    // synchronized, so the server answers an error and keeps the socket.
    let mut frame = Vec::new();
    frame.extend_from_slice(proto::PROTO_MAGIC);
    frame.extend_from_slice(&proto::PROTOCOL_VERSION.to_le_bytes());
    let payload = [0x3Fu8; 16]; // unknown value tag
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    // Follow up with a valid ping *on the same socket*.
    frame.extend_from_slice(&proto::encode_frame(&Request::Ping).unwrap());
    stream.write_all(&frame).unwrap();

    let mut reader = std::io::BufReader::new(stream);
    let first: Response = proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
        .unwrap()
        .unwrap();
    assert!(matches!(
        first,
        Response::Error {
            fault: WireFault::BadRequest { .. }
        }
    ));
    let second: Response = proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
        .unwrap()
        .unwrap();
    assert!(
        matches!(second, Response::Pong { .. }),
        "the connection survived the bad payload"
    );
    server.shutdown().unwrap();
}

#[test]
fn connect_retry_covers_a_late_binding_judge() {
    // Nothing is listening on this port yet.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);

    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server_thread = std::thread::spawn(move || {
        // Bind only after the client's first attempt has likely failed.
        std::thread::sleep(Duration::from_millis(150));
        JudgeServer::bind(addr, service, ServerConfig::default()).unwrap().spawn()
    });
    let mut client = DisputeClient::connect_with(
        addr,
        ClientConfig {
            connect_attempts: 10,
            retry_backoff: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
    .expect("retries outlast the judge's late bind");
    assert_eq!(client.ping().unwrap().models_registered, 0);
    server_thread.join().unwrap().shutdown().unwrap();

    // With no judge at all, the retries exhaust into a typed Io error.
    let gone = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = gone.local_addr().unwrap();
    drop(gone);
    let err = DisputeClient::connect_with(
        dead_addr,
        ClientConfig {
            connect_attempts: 2,
            retry_backoff: Duration::from_millis(10),
            connect_timeout: Some(Duration::from_millis(200)),
            ..ClientConfig::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, WatermarkError::Io { .. }));
}

#[test]
fn an_idle_connection_cannot_wedge_a_saturated_accept_loop() {
    // max_connections: 0 forces every connection onto the accept thread
    // (full saturation). The configured read timeout bounds how long an
    // idle peer may hold it.
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = JudgeServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            max_connections: 0,
            read_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn();

    // A slow-loris peer: connects and sends nothing.
    let idle = TcpStream::connect(server.addr()).unwrap();

    // A real client arrives while the accept thread is parked on the idle
    // peer. Once the idle read times out, the loop accepts and serves it —
    // the retry budget far outlasts the 200 ms timeout.
    let mut client = DisputeClient::connect_with(
        server.addr(),
        ClientConfig {
            connect_attempts: 10,
            retry_backoff: Duration::from_millis(100),
            read_timeout: Some(Duration::from_secs(10)),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert_eq!(client.ping().unwrap().protocol_version, proto::PROTOCOL_VERSION);
    drop(idle);
    drop(client);
    server.shutdown().unwrap();
}

#[test]
fn a_transport_error_poisons_the_client_connection() {
    let (test, outcome) = embedded(74);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("m", &outcome.model);
    let server = start_server(Arc::clone(&service));

    // A client whose receive cap is far below any real response frame:
    // the first exchange fails mid-stream (FrameTooLarge on the answer),
    // leaving the unread response bytes in the socket.
    let mut client = DisputeClient::connect_with(
        server.addr(),
        ClientConfig {
            max_frame_bytes: 16,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert!(!client.is_broken());
    assert!(matches!(
        client.resolve("m", &claim).unwrap_err(),
        WatermarkError::FrameTooLarge { .. }
    ));

    // Without poisoning, a retry would consume the stale response of the
    // first request and misattribute it. The client refuses instead.
    assert!(client.is_broken());
    match client.ping().unwrap_err() {
        WatermarkError::ProtocolViolation { detail } => {
            assert!(detail.contains("poisoned"), "unexpected detail: {detail}")
        }
        other => panic!("expected a poisoned-connection error, got {other:?}"),
    }

    // A fresh connection works fine; the server is unaffected.
    let mut fresh = DisputeClient::connect(server.addr()).unwrap();
    assert!(fresh.resolve("m", &claim).unwrap().verified);
    server.shutdown().unwrap();
}
