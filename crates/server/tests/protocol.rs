//! Integration suite for the judge-as-a-service layer: loopback
//! round-trips that must be bit-identical to in-process resolution, the
//! WDTP v2 pipelining and content-addressing paths, and the protocol's
//! negative paths (malformed frames, v1 peers, hostile length prefixes,
//! unknown correlation ids, half-closed sockets).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wdte_core::error::WatermarkError;
use wdte_core::proto::{self, DisputeRef, PayloadDigest, Request, Response, WireFault};
use wdte_core::{
    Dispute, DisputeService, OwnershipClaim, Signature, WatermarkConfig, WatermarkOutcome, Watermarker,
};
use wdte_data::{Dataset, SyntheticSpec};
use wdte_server::{ClientConfig, DisputeClient, JudgeServer, RunningServer, ServerConfig};

fn embedded(seed: u64) -> (Dataset, WatermarkOutcome) {
    let dataset = SyntheticSpec::breast_cancer_like()
        .scaled(0.6)
        .generate(&mut SmallRng::seed_from_u64(seed));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
    let (train, test) = dataset.split_stratified(0.75, &mut rng);
    let signature = Signature::random(12, 0.5, &mut rng);
    let watermarker = Watermarker::new(WatermarkConfig {
        num_trees: 12,
        ..WatermarkConfig::fast()
    });
    let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
    (test, outcome)
}

fn claim_for(outcome: &WatermarkOutcome, test: &Dataset) -> OwnershipClaim {
    OwnershipClaim::new(
        outcome.signature.clone(),
        outcome.trigger_set.clone(),
        test.clone(),
    )
}

fn start_server(service: Arc<DisputeService>) -> RunningServer {
    JudgeServer::bind("127.0.0.1:0", service, ServerConfig::default())
        .expect("loopback bind succeeds")
        .spawn()
}

/// Acceptance gate of the network layer: a 64-claim docket resolved
/// through `DisputeClient` is bit-identical to `resolve_many` in process,
/// even though the wire deduplicates the repeated claim bodies.
#[test]
fn loopback_docket_is_bit_identical_to_in_process_resolution() {
    let (test, outcome) = embedded(71);
    let genuine = claim_for(&outcome, &test);
    let mut rng = SmallRng::seed_from_u64(99);
    let forged = OwnershipClaim::new(
        Signature::random(12, 0.5, &mut rng),
        test.select(&test.sample_indices(outcome.trigger_set.len(), &mut rng)).unwrap(),
        test.clone(),
    );
    let docket: Vec<Dispute> = (0..64)
        .map(|i| {
            let claim = if i % 2 == 0 {
                genuine.clone()
            } else {
                forged.clone()
            };
            // A few disputes name an unregistered model so typed errors
            // cross the wire too.
            let model_id = if i % 13 == 5 { "ghost" } else { "deployment" };
            Dispute::new(model_id, claim)
        })
        .collect();

    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("deployment", &outcome.model);
    let reference = service.resolve_many(&docket);

    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    let served = client.resolve_docket(&docket).unwrap();

    assert_eq!(served.len(), 64);
    assert_eq!(
        served, reference,
        "wire and in-process verdicts must be bit-identical"
    );
    assert!(served.iter().filter_map(|v| v.as_ref().ok()).any(|r| r.verified));
    assert!(served.iter().any(|v| matches!(
        v,
        Err(WatermarkError::UnknownModel { model_id }) if model_id == "ghost"
    )));
    // The docket never triggered extra compilations server-side.
    assert_eq!(service.compile_count(), 1);
    server.shutdown().unwrap();
}

/// Several dockets in flight at once must produce exactly the verdicts of
/// resolving them one at a time — and of resolving them in process.
#[test]
fn pipelined_dockets_are_bit_identical_to_sequential_ones() {
    let (test, outcome) = embedded(75);
    let genuine = claim_for(&outcome, &test);
    let mut rng = SmallRng::seed_from_u64(123);
    let forged = OwnershipClaim::new(
        Signature::random(12, 0.5, &mut rng),
        test.select(&test.sample_indices(outcome.trigger_set.len(), &mut rng)).unwrap(),
        test.clone(),
    );
    let dockets: Vec<Vec<Dispute>> = (0..6)
        .map(|d| {
            (0..8)
                .map(|i| {
                    let claim = if (d + i) % 2 == 0 {
                        genuine.clone()
                    } else {
                        forged.clone()
                    };
                    let model_id = if i == 3 && d == 2 { "ghost" } else { "deployment" };
                    Dispute::new(model_id, claim)
                })
                .collect()
        })
        .collect();

    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("deployment", &outcome.model);
    let reference: Vec<_> = dockets.iter().map(|d| service.resolve_many(d)).collect();

    let server = start_server(Arc::clone(&service));

    let mut sequential_client = DisputeClient::connect(server.addr()).unwrap();
    let sequential: Vec<_> =
        dockets.iter().map(|d| sequential_client.resolve_docket(d).unwrap()).collect();

    let mut pipelined_client = DisputeClient::connect(server.addr()).unwrap();
    let pipelined = pipelined_client.pipeline_dockets(&dockets).unwrap();

    assert_eq!(pipelined, sequential, "pipelining must not change verdicts");
    assert_eq!(pipelined, reference, "wire verdicts must match in-process ones");
    assert_eq!(pipelined_client.pending_dockets(), 0);
    server.shutdown().unwrap();
}

/// Tickets may be redeemed in any order: responses that arrive for a
/// not-yet-redeemed ticket are stashed, not lost or misattributed.
#[test]
fn tickets_can_be_received_out_of_order() {
    let (test, outcome) = embedded(76);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("m", &outcome.model);
    let big: Vec<Dispute> = (0..16).map(|_| Dispute::new("m", claim.clone())).collect();
    let small = vec![Dispute::new("m", claim.clone())];
    let reference_big = service.resolve_many(&big);
    let reference_small = service.resolve_many(&small);

    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    let ticket_big = client.send_docket(&big).unwrap();
    let ticket_small = client.send_docket(&small).unwrap();
    assert_eq!(client.pending_dockets(), 2);

    // Redeem in reverse send order; whichever response lands first for
    // the other ticket is stashed.
    assert_eq!(client.recv_docket(ticket_small).unwrap(), reference_small);
    assert_eq!(client.recv_docket(ticket_big).unwrap(), reference_big);
    assert_eq!(client.pending_dockets(), 0);
    assert!(!client.is_broken());
    server.shutdown().unwrap();
}

/// A judge whose claim cache is too small to hold anything answers every
/// digest-only docket with `NeedPayload`; the client must recover
/// transparently (resend with bodies inlined) and still produce verdicts
/// bit-identical to the in-process ones.
#[test]
fn need_payload_recovery_survives_a_tiny_claim_cache() {
    let (test, outcome) = embedded(77);
    let claim = claim_for(&outcome, &test);
    // A 1-byte budget evicts every inserted claim immediately.
    let service = Arc::new(DisputeService::builder().claim_cache_bytes(1).build().unwrap());
    service.register("m", &outcome.model);
    let docket: Vec<Dispute> = (0..4).map(|_| Dispute::new("m", claim.clone())).collect();
    let reference = service.resolve_many(&docket);

    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    // First docket inlines the body (never sent before) — resolves from
    // the request-local bodies even though the cache forgets it at once.
    assert_eq!(client.resolve_docket(&docket).unwrap(), reference);
    // Second docket references the claim digest-only, the judge answers
    // NeedPayload, and the client resends with the body inlined.
    assert_eq!(client.resolve_docket(&docket).unwrap(), reference);
    assert!(!client.is_broken());
    server.shutdown().unwrap();
}

#[test]
fn full_client_surface_round_trips() {
    let (test, outcome) = embedded(72);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().max_docket(4).build().unwrap());
    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();

    let pong = client.ping().unwrap();
    assert_eq!(pong.protocol_version, proto::PROTOCOL_VERSION);
    assert_eq!(pong.models_registered, 0);
    assert_eq!(pong.claims_cached, 0);

    assert_eq!(client.register_model("m", &outcome.model).unwrap(), 12);
    // Same model again: the client registers by digest reference, and the
    // judge reuses the compiled form instead of recompiling.
    assert_eq!(client.register_model("aaa", &outcome.model).unwrap(), 12);
    assert_eq!(
        service.compile_count(),
        1,
        "digest re-registration reuses the compiled form"
    );
    assert_eq!(client.list_models().unwrap(), ["aaa", "m"], "listings are sorted");

    let report = client.resolve("m", &claim).unwrap();
    assert_eq!(report, service.resolve("m", &claim).unwrap());
    assert!(report.verified);

    // Typed errors reconstruct on the client side.
    assert!(matches!(
        client.resolve("ghost", &claim).unwrap_err(),
        WatermarkError::UnknownModel { model_id } if model_id == "ghost"
    ));
    let oversized: Vec<Dispute> = (0..5).map(|_| Dispute::new("m", claim.clone())).collect();
    assert!(matches!(
        client.resolve_docket(&oversized).unwrap_err(),
        WatermarkError::DocketTooLarge { size: 5, max: 4 }
    ));

    // Dockets feed the judge's content cache, visible in the next pong.
    let docket: Vec<Dispute> = (0..2).map(|_| Dispute::new("m", claim.clone())).collect();
    assert!(client.resolve_docket(&docket).unwrap()[0].as_ref().unwrap().verified);
    assert_eq!(client.ping().unwrap().claims_cached, 1, "duplicates cached once");

    assert!(client.deregister("aaa").unwrap());
    assert!(
        !client.deregister("aaa").unwrap(),
        "second deregister reports absence"
    );
    assert_eq!(client.list_models().unwrap(), ["m"]);
    // The connection survives all of the above on one socket.
    assert!(client.resolve("m", &claim).unwrap().verified);
    server.shutdown().unwrap();
}

#[test]
fn register_over_wire_matches_local_registration() {
    let (test, outcome) = embedded(73);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    client.register_model("wire", &outcome.model).unwrap();

    // The model deserialized server-side behaves exactly like the local one.
    let local = DisputeService::builder().build().unwrap();
    local.register("wire", &outcome.model);
    assert_eq!(
        client.resolve("wire", &claim).unwrap(),
        local.resolve("wire", &claim).unwrap()
    );
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Negative paths, driven over a raw socket
// ---------------------------------------------------------------------------

fn raw_connection(server: &RunningServer) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

fn read_error_response(stream: &mut TcpStream) -> (u64, WireFault) {
    let mut reader = BufReader::new(stream);
    let (corr, response): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .expect("server answers before closing")
            .expect("server answers before closing");
    match response {
        Response::Error { fault } => (corr, fault),
        other => panic!("expected an error response, got {other:?}"),
    }
}

/// One raw request/response exchange with correlation id `corr`.
fn exchange(reader: &mut BufReader<TcpStream>, corr: u64, request: &Request) -> (u64, Response) {
    proto::write_message(reader.get_mut(), corr, request).unwrap();
    proto::read_message(reader, proto::DEFAULT_MAX_FRAME_BYTES)
        .unwrap()
        .expect("server answers")
}

#[test]
fn bad_magic_gets_an_error_response_and_a_closed_connection() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let (corr, fault) = read_error_response(&mut stream);
    assert_eq!(
        corr,
        proto::NO_CORRELATION,
        "frame-level faults carry the reserved id"
    );
    assert!(matches!(fault, WireFault::BadRequest { .. }));
    // The server closed its side: the next read is EOF.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    server.shutdown().unwrap();
}

/// A WDTP v1 peer has a 10-byte header (no correlation id). The v2 server
/// must refuse it with a version fault as soon as the 6-byte prelude
/// arrives — not stall waiting for 18 header bytes or misparse the v1
/// length prefix as correlation bits.
#[test]
fn v1_client_is_refused_with_a_version_fault() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    // Hand-built v1 frame: magic + version 1 + u32 length + payload.
    let payload = b"\x00";
    let mut frame = Vec::new();
    frame.extend_from_slice(proto::PROTO_MAGIC);
    frame.extend_from_slice(&1u16.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame).unwrap();
    match read_error_response(&mut stream) {
        (corr, WireFault::UnsupportedProtocolVersion { found, supported }) => {
            assert_eq!(corr, proto::NO_CORRELATION);
            assert_eq!(found, 1);
            assert_eq!(supported, proto::PROTOCOL_VERSION);
        }
        (_, other) => panic!("expected a version fault, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn future_protocol_version_is_refused_with_a_structured_fault() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    let mut frame = proto::encode_frame(1, &Request::Ping).unwrap();
    frame[4..6].copy_from_slice(&999u16.to_le_bytes());
    stream.write_all(&frame).unwrap();
    match read_error_response(&mut stream) {
        (_, WireFault::UnsupportedProtocolVersion { found, supported }) => {
            assert_eq!(found, 999);
            assert_eq!(supported, proto::PROTOCOL_VERSION);
        }
        (_, other) => panic!("expected a version fault, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn oversized_length_prefix_is_refused_without_reading_the_payload() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = JudgeServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            max_frame_bytes: 1024,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn();
    let mut stream = raw_connection(&server);
    let mut header = Vec::new();
    header.extend_from_slice(proto::PROTO_MAGIC);
    header.extend_from_slice(&proto::PROTOCOL_VERSION.to_le_bytes());
    header.extend_from_slice(&77u64.to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    stream.write_all(&header).unwrap();
    // No payload is ever sent — the server must answer from the header
    // alone instead of waiting for 4 GiB.
    match read_error_response(&mut stream) {
        (corr, WireFault::FrameTooLarge { size, max }) => {
            assert_eq!(corr, 77, "the offending request's id is echoed");
            assert_eq!(size, u64::from(u32::MAX));
            assert_eq!(max, 1024);
        }
        (_, other) => panic!("expected a frame-size fault, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn half_closed_socket_mid_frame_does_not_wedge_the_server() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = start_server(Arc::clone(&service));

    // A client sends half a frame, then closes its write side.
    let frame = proto::encode_frame(3, &Request::ListModels).unwrap();
    let mut stream = raw_connection(&server);
    stream.write_all(&frame[..frame.len() / 2]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    // The server detects the truncation and answers a BadRequest fault
    // (best effort) before closing — it must not hang on the missing half.
    assert!(matches!(
        read_error_response(&mut stream),
        (_, WireFault::BadRequest { .. })
    ));

    // And the server is still fully alive for the next client.
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    assert_eq!(client.ping().unwrap().protocol_version, proto::PROTOCOL_VERSION);
    server.shutdown().unwrap();
}

#[test]
fn half_closed_socket_between_frames_is_a_clean_goodbye() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    // A complete ping, then a write-side shutdown: the server answers the
    // ping and closes without inventing an error.
    stream.write_all(&proto::encode_frame(9, &Request::Ping).unwrap()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reader = BufReader::new(&mut stream);
    let (corr, response): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .expect("the ping sent before the shutdown is answered");
    assert_eq!(corr, 9);
    assert!(matches!(response, Response::Pong { .. }));
    assert!(
        proto::read_message::<Response, _>(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .is_none(),
        "no further frames: the server closes cleanly"
    );
    server.shutdown().unwrap();
}

#[test]
fn garbage_payload_in_a_valid_frame_keeps_the_connection_usable() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    // A well-framed payload that is not a decodable Request: framing stays
    // synchronized, so the server answers an error and keeps the socket.
    let mut frame = Vec::new();
    frame.extend_from_slice(proto::PROTO_MAGIC);
    frame.extend_from_slice(&proto::PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&21u64.to_le_bytes());
    let payload = [0x3Fu8; 16]; // unknown value tag
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    // Follow up with a valid ping *on the same socket*.
    frame.extend_from_slice(&proto::encode_frame(22, &Request::Ping).unwrap());
    stream.write_all(&frame).unwrap();

    let mut reader = BufReader::new(stream);
    let (first_corr, first): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
    assert_eq!(first_corr, 21, "the decode failure is attributed to its frame");
    assert!(matches!(
        first,
        Response::Error {
            fault: WireFault::BadRequest { .. }
        }
    ));
    let (second_corr, second): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
    assert_eq!(second_corr, 22);
    assert!(
        matches!(second, Response::Pong { .. }),
        "the connection survived the bad payload"
    );
    server.shutdown().unwrap();
}

/// A digest the judge has never seen — in a docket reference or a model
/// reference — is answered with `NeedPayload` naming exactly that digest;
/// uploading the body via `Payload` then makes the same reference
/// resolvable.
#[test]
fn unknown_digests_get_a_need_payload_answer_and_uploads_cure_it() {
    let (test, outcome) = embedded(78);
    let claim = claim_for(&outcome, &test);
    let digest = PayloadDigest::of_claim(&claim);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("m", &outcome.model);
    let reference = service.resolve("m", &claim).unwrap();
    let server = start_server(Arc::clone(&service));
    let mut reader = BufReader::new(raw_connection(&server));

    // Digest-only docket before any upload: NeedPayload, no verdicts.
    let request = Request::ResolveDocketRef {
        bodies: vec![],
        disputes: vec![DisputeRef::new("m", digest)],
    };
    let (corr, response) = exchange(&mut reader, 5, &request);
    assert_eq!(corr, 5);
    assert_eq!(
        response,
        Response::NeedPayload {
            digests: vec![digest]
        }
    );

    // Upload the body; the judge echoes the digest it computed.
    let (corr, response) = exchange(
        &mut reader,
        6,
        &Request::Payload {
            claims: vec![claim.clone()],
        },
    );
    assert_eq!(corr, 6);
    assert_eq!(
        response,
        Response::PayloadStored {
            digests: vec![digest]
        }
    );

    // The same digest-only docket now resolves, bit-identical.
    let (corr, response) = exchange(&mut reader, 7, &request);
    assert_eq!(corr, 7);
    match response {
        Response::Docket { verdicts } => {
            assert_eq!(verdicts.len(), 1);
            assert_eq!(verdicts[0].clone().into_result().unwrap(), reference);
        }
        other => panic!("expected verdicts, got {other:?}"),
    }

    // Model references behave the same way.
    let ghost = PayloadDigest::of_claim(&claim); // any digest no *model* has
    let (corr, response) = exchange(
        &mut reader,
        8,
        &Request::RegisterModelRef {
            model_id: "copy".to_string(),
            digest: ghost,
        },
    );
    assert_eq!(corr, 8);
    assert_eq!(response, Response::NeedPayload { digests: vec![ghost] });
    server.shutdown().unwrap();
}

/// Raw interleaving: two requests written back-to-back are both answered,
/// each under its own correlation id, whatever order the judge finishes
/// them in.
#[test]
fn interleaved_requests_complete_out_of_order_by_correlation_id() {
    let (test, outcome) = embedded(79);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("m", &outcome.model);
    let server = start_server(Arc::clone(&service));
    let mut reader = BufReader::new(raw_connection(&server));

    // A slow docket then a fast ping, pipelined in one write burst.
    let docket = Request::ResolveDocket {
        disputes: (0..8).map(|_| Dispute::new("m", claim.clone())).collect(),
    };
    let mut burst = proto::encode_frame(100, &docket).unwrap();
    burst.extend_from_slice(&proto::encode_frame(101, &Request::Ping).unwrap());
    reader.get_mut().write_all(&burst).unwrap();

    let mut seen = std::collections::HashMap::new();
    for _ in 0..2 {
        let (corr, response): (u64, Response) =
            proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .expect("both pipelined requests are answered");
        seen.insert(corr, response);
    }
    assert!(matches!(seen.get(&101), Some(Response::Pong { .. })));
    match seen.get(&100) {
        Some(Response::Docket { verdicts }) => assert_eq!(verdicts.len(), 8),
        other => panic!("expected docket verdicts, got {other:?}"),
    }
    server.shutdown().unwrap();
}

/// A judge answering a correlation id the client never sent poisons the
/// connection: pairing is lost, so any further exchange could
/// misattribute verdicts.
#[test]
fn an_unknown_correlation_id_poisons_the_client() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let rogue = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (corr, _request): (u64, Request) =
            proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
        // Answer under a different id than the request carried.
        proto::write_message(
            &mut stream,
            corr ^ 0xDEAD,
            &Response::Models { model_ids: vec![] },
        )
        .unwrap();
    });

    let mut client = DisputeClient::connect(addr).unwrap();
    match client.ping().unwrap_err() {
        WatermarkError::ProtocolViolation { detail } => {
            assert!(detail.contains("correlation id"), "unexpected detail: {detail}")
        }
        other => panic!("expected a correlation violation, got {other:?}"),
    }
    assert!(client.is_broken());
    rogue.join().unwrap();
}

#[test]
fn connect_retry_covers_a_late_binding_judge() {
    // Nothing is listening on this port yet.
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);

    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server_thread = std::thread::spawn(move || {
        // Bind only after the client's first attempt has likely failed.
        std::thread::sleep(Duration::from_millis(150));
        JudgeServer::bind(addr, service, ServerConfig::default()).unwrap().spawn()
    });
    let mut client = DisputeClient::connect_with(
        addr,
        ClientConfig {
            connect_attempts: 10,
            retry_backoff: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
    .expect("retries outlast the judge's late bind");
    assert_eq!(client.ping().unwrap().models_registered, 0);
    server_thread.join().unwrap().shutdown().unwrap();

    // With no judge at all, the retries exhaust into a typed Io error.
    let gone = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = gone.local_addr().unwrap();
    drop(gone);
    let err = DisputeClient::connect_with(
        dead_addr,
        ClientConfig {
            connect_attempts: 2,
            retry_backoff: Duration::from_millis(10),
            connect_timeout: Some(Duration::from_millis(200)),
            ..ClientConfig::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, WatermarkError::Io { .. }));
}

/// The exponential backoff between connect attempts is capped by
/// `max_retry_backoff`: many attempts retry steadily instead of doubling
/// into multi-minute sleeps.
#[test]
fn connect_backoff_is_capped() {
    let gone = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = gone.local_addr().unwrap();
    drop(gone);

    let started = Instant::now();
    let err = DisputeClient::connect_with(
        dead_addr,
        ClientConfig {
            connect_attempts: 4,
            retry_backoff: Duration::from_millis(200),
            max_retry_backoff: Duration::from_millis(250),
            connect_timeout: Some(Duration::from_millis(100)),
            ..ClientConfig::default()
        },
    )
    .unwrap_err();
    let elapsed = started.elapsed();
    assert!(matches!(err, WatermarkError::Io { .. }));
    // Capped sleeps: 200 + 250 + 250 = 700 ms. Uncapped doubling would be
    // 200 + 400 + 800 = 1400 ms; leave slack for scheduling noise.
    assert!(
        elapsed < Duration::from_millis(1200),
        "backoff was not capped: took {elapsed:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(600),
        "backoff did not happen at all: took {elapsed:?}"
    );
}

/// A socket-option failure after a successful connect counts as one
/// failed attempt — it must not abort the retry loop. `Duration::ZERO` is
/// rejected by `set_read_timeout`, which makes it a deterministic way to
/// force that path.
#[test]
fn a_socket_option_failure_counts_as_a_failed_attempt() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let err = DisputeClient::connect_with(
        server.addr(),
        ClientConfig {
            connect_attempts: 2,
            retry_backoff: Duration::from_millis(10),
            read_timeout: Some(Duration::ZERO),
            ..ClientConfig::default()
        },
    )
    .unwrap_err();
    match err {
        WatermarkError::Io { message, .. } => assert!(
            message.contains("could not connect after 2 attempts"),
            "the option failure must exhaust the retry budget, not abort: {message}"
        ),
        other => panic!("expected an Io error, got {other:?}"),
    }
    server.shutdown().unwrap();
}

/// `max_connections: 0` means unlimited: many held-open idle connections
/// must not stop new arrivals from being served.
#[test]
fn zero_max_connections_means_unlimited() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = JudgeServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            max_connections: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn();

    // Dozens of idle peers holding their sockets open.
    let idle: Vec<TcpStream> = (0..32).map(|_| TcpStream::connect(server.addr()).unwrap()).collect();

    // A real client is served immediately alongside them.
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    assert_eq!(client.ping().unwrap().protocol_version, proto::PROTOCOL_VERSION);
    drop(idle);
    drop(client);
    server.shutdown().unwrap();
}

/// Idle connections are reaped after `read_timeout` with no in-flight
/// requests, so slow-loris peers cost a descriptor only temporarily.
#[test]
fn idle_connections_are_reaped_after_the_read_timeout() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = JudgeServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            read_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn();

    let mut idle = raw_connection(&server);
    std::thread::sleep(Duration::from_millis(700));
    let mut rest = Vec::new();
    assert_eq!(
        idle.read_to_end(&mut rest).unwrap(),
        0,
        "the server closed the idle connection"
    );
    server.shutdown().unwrap();
}

/// Regression test for the shutdown nudge: a server bound to the
/// unspecified address reports `0.0.0.0:port`, and the wake-up nudge must
/// target loopback instead of connecting to `0.0.0.0` (whose behaviour is
/// platform-dependent).
#[test]
fn shutdown_completes_on_an_unspecified_address_bind() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = JudgeServer::bind("0.0.0.0:0", service, ServerConfig::default())
        .unwrap()
        .spawn();
    assert!(server.addr().ip().is_unspecified());

    let finished = std::thread::spawn(move || server.shutdown());
    let deadline = Instant::now() + Duration::from_secs(10);
    while !finished.is_finished() {
        assert!(
            Instant::now() < deadline,
            "shutdown wedged on an unspecified-address bind"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    finished.join().unwrap().unwrap();
}

#[test]
fn a_transport_error_poisons_the_client_connection() {
    let (test, outcome) = embedded(74);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("m", &outcome.model);
    let server = start_server(Arc::clone(&service));

    // A client whose receive cap is far below any real response frame:
    // the first exchange fails mid-stream (FrameTooLarge on the answer),
    // leaving the unread response bytes in the socket.
    let mut client = DisputeClient::connect_with(
        server.addr(),
        ClientConfig {
            max_frame_bytes: 16,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert!(!client.is_broken());
    assert!(matches!(
        client.resolve("m", &claim).unwrap_err(),
        WatermarkError::FrameTooLarge { .. }
    ));

    // Without poisoning, a retry would consume the stale response of the
    // first request and misattribute it. The client refuses instead.
    assert!(client.is_broken());
    match client.ping().unwrap_err() {
        WatermarkError::ProtocolViolation { detail } => {
            assert!(detail.contains("poisoned"), "unexpected detail: {detail}")
        }
        other => panic!("expected a poisoned-connection error, got {other:?}"),
    }

    // A fresh connection works fine; the server is unaffected.
    let mut fresh = DisputeClient::connect(server.addr()).unwrap();
    assert!(fresh.resolve("m", &claim).unwrap().verified);
    server.shutdown().unwrap();
}
