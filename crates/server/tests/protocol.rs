//! Integration suite for the judge-as-a-service layer: loopback
//! round-trips that must be bit-identical to in-process resolution, the
//! WDTP pipelining and content-addressing paths, frame authentication and
//! tenant isolation, and the protocol's negative paths (malformed frames,
//! old peers, hostile length prefixes, forged or replayed auth tags,
//! quota refusals, unknown correlation ids, half-closed sockets).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wdte_core::error::WatermarkError;
use wdte_core::proto::{self, DisputeRef, PayloadDigest, Request, Response, WireFault};
use wdte_core::{
    persist, Dispute, DisputeService, KeyRing, OwnershipClaim, Signature, TenantId, TenantQuotas,
    WatermarkConfig, WatermarkOutcome, Watermarker,
};
use wdte_data::{Dataset, SyntheticSpec};
use wdte_server::{ClientAuth, ClientConfig, DisputeClient, JudgeServer, RunningServer, ServerConfig};
use wdte_trees::{ForestParams, RandomForest};

fn embedded(seed: u64) -> (Dataset, WatermarkOutcome) {
    let dataset = SyntheticSpec::breast_cancer_like()
        .scaled(0.6)
        .generate(&mut SmallRng::seed_from_u64(seed));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
    let (train, test) = dataset.split_stratified(0.75, &mut rng);
    let signature = Signature::random(12, 0.5, &mut rng);
    let watermarker = Watermarker::new(WatermarkConfig {
        num_trees: 12,
        ..WatermarkConfig::fast()
    });
    let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
    (test, outcome)
}

fn claim_for(outcome: &WatermarkOutcome, test: &Dataset) -> OwnershipClaim {
    OwnershipClaim::new(
        outcome.signature.clone(),
        outcome.trigger_set.clone(),
        test.clone(),
    )
}

fn start_server(service: Arc<DisputeService>) -> RunningServer {
    JudgeServer::bind("127.0.0.1:0", service, ServerConfig::default())
        .expect("loopback bind succeeds")
        .spawn()
}

/// Cheap non-watermarked fixture for tests that only need wire parity or
/// structural validity, not an upheld verdict — skips the expensive
/// embedding loop.
fn plain_fixture(seed: u64) -> (RandomForest, OwnershipClaim) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dataset = SyntheticSpec::breast_cancer_like().scaled(0.3).generate(&mut rng);
    let (trigger, test) = dataset.split_train_test(0.2, &mut rng);
    let model = RandomForest::fit(&dataset, &ForestParams::with_trees(8), &mut rng);
    let claim = OwnershipClaim::new(Signature::random(8, 0.5, &mut rng), trigger, test);
    (model, claim)
}

/// A two-tenant key ring shared by the authentication tests.
fn two_tenant_ring() -> KeyRing {
    KeyRing::parse("acme:correct horse battery staple\nglobex:hunter2\n").unwrap()
}

fn auth_for(ring: &KeyRing, name: &str) -> ClientAuth {
    let tenant = TenantId::new(name).unwrap();
    let secret = ring.key(&tenant).expect("tenant is enrolled").to_vec();
    ClientAuth::new(tenant, secret)
}

fn keyed_server(service: Arc<DisputeService>, ring: KeyRing) -> RunningServer {
    JudgeServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            key_ring: Some(Arc::new(ring)),
            ..ServerConfig::default()
        },
    )
    .expect("loopback bind succeeds")
    .spawn()
}

/// Hand-builds one anonymous v4 header (sequence, tenant and tag all
/// zero) announcing `announced` payload bytes.
fn raw_anonymous_header(corr: u64, announced: u32) -> Vec<u8> {
    let mut header = Vec::new();
    header.extend_from_slice(proto::PROTO_MAGIC);
    header.extend_from_slice(&proto::PROTOCOL_VERSION.to_le_bytes());
    header.extend_from_slice(&corr.to_le_bytes());
    header.extend_from_slice(&0u64.to_le_bytes()); // sequence
    header.extend_from_slice(&[0u8; 16]); // tenant
    header.extend_from_slice(&[0u8; 16]); // tag
    header.extend_from_slice(&announced.to_le_bytes());
    header
}

/// Acceptance gate of the network layer: a 64-claim docket resolved
/// through `DisputeClient` is bit-identical to `resolve_many` in process,
/// even though the wire deduplicates the repeated claim bodies.
#[test]
fn loopback_docket_is_bit_identical_to_in_process_resolution() {
    let (test, outcome) = embedded(71);
    let genuine = claim_for(&outcome, &test);
    let mut rng = SmallRng::seed_from_u64(99);
    let forged = OwnershipClaim::new(
        Signature::random(12, 0.5, &mut rng),
        test.select(&test.sample_indices(outcome.trigger_set.len(), &mut rng)).unwrap(),
        test.clone(),
    );
    let docket: Vec<Dispute> = (0..64)
        .map(|i| {
            let claim = if i % 2 == 0 {
                genuine.clone()
            } else {
                forged.clone()
            };
            // A few disputes name an unregistered model so typed errors
            // cross the wire too.
            let model_id = if i % 13 == 5 { "ghost" } else { "deployment" };
            Dispute::new(model_id, claim)
        })
        .collect();

    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("deployment", &outcome.model);
    let reference = service.resolve_many(&docket);

    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    let served = client.resolve_docket(&docket).unwrap();

    assert_eq!(served.len(), 64);
    assert_eq!(
        served, reference,
        "wire and in-process verdicts must be bit-identical"
    );
    assert!(served.iter().filter_map(|v| v.as_ref().ok()).any(|r| r.verified));
    assert!(served.iter().any(|v| matches!(
        v,
        Err(WatermarkError::UnknownModel { model_id }) if model_id == "ghost"
    )));
    // The docket never triggered extra compilations server-side.
    assert_eq!(service.compile_count(), 1);
    server.shutdown().unwrap();
}

/// Several dockets in flight at once must produce exactly the verdicts of
/// resolving them one at a time — and of resolving them in process.
#[test]
fn pipelined_dockets_are_bit_identical_to_sequential_ones() {
    let (test, outcome) = embedded(75);
    let genuine = claim_for(&outcome, &test);
    let mut rng = SmallRng::seed_from_u64(123);
    let forged = OwnershipClaim::new(
        Signature::random(12, 0.5, &mut rng),
        test.select(&test.sample_indices(outcome.trigger_set.len(), &mut rng)).unwrap(),
        test.clone(),
    );
    let dockets: Vec<Vec<Dispute>> = (0..6)
        .map(|d| {
            (0..8)
                .map(|i| {
                    let claim = if (d + i) % 2 == 0 {
                        genuine.clone()
                    } else {
                        forged.clone()
                    };
                    let model_id = if i == 3 && d == 2 { "ghost" } else { "deployment" };
                    Dispute::new(model_id, claim)
                })
                .collect()
        })
        .collect();

    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("deployment", &outcome.model);
    let reference: Vec<_> = dockets.iter().map(|d| service.resolve_many(d)).collect();

    let server = start_server(Arc::clone(&service));

    let mut sequential_client = DisputeClient::connect(server.addr()).unwrap();
    let sequential: Vec<_> =
        dockets.iter().map(|d| sequential_client.resolve_docket(d).unwrap()).collect();

    let mut pipelined_client = DisputeClient::connect(server.addr()).unwrap();
    let pipelined = pipelined_client.pipeline_dockets(&dockets).unwrap();

    assert_eq!(pipelined, sequential, "pipelining must not change verdicts");
    assert_eq!(pipelined, reference, "wire verdicts must match in-process ones");
    assert_eq!(pipelined_client.pending_dockets(), 0);
    server.shutdown().unwrap();
}

/// Tickets may be redeemed in any order: responses that arrive for a
/// not-yet-redeemed ticket are stashed, not lost or misattributed.
#[test]
fn tickets_can_be_received_out_of_order() {
    let (test, outcome) = embedded(76);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("m", &outcome.model);
    let big: Vec<Dispute> = (0..16).map(|_| Dispute::new("m", claim.clone())).collect();
    let small = vec![Dispute::new("m", claim.clone())];
    let reference_big = service.resolve_many(&big);
    let reference_small = service.resolve_many(&small);

    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    let ticket_big = client.send_docket(&big).unwrap();
    let ticket_small = client.send_docket(&small).unwrap();
    assert_eq!(client.pending_dockets(), 2);

    // Redeem in reverse send order; whichever response lands first for
    // the other ticket is stashed.
    assert_eq!(client.recv_docket(ticket_small).unwrap(), reference_small);
    assert_eq!(client.recv_docket(ticket_big).unwrap(), reference_big);
    assert_eq!(client.pending_dockets(), 0);
    assert!(!client.is_broken());
    server.shutdown().unwrap();
}

/// A judge whose claim cache is too small to hold anything answers every
/// digest-only docket with `NeedPayload`; the client must recover
/// transparently (resend with bodies inlined) and still produce verdicts
/// bit-identical to the in-process ones.
#[test]
fn need_payload_recovery_survives_a_tiny_claim_cache() {
    let (test, outcome) = embedded(77);
    let claim = claim_for(&outcome, &test);
    // A 1-byte budget evicts every inserted claim immediately.
    let service = Arc::new(DisputeService::builder().claim_cache_bytes(1).build().unwrap());
    service.register("m", &outcome.model);
    let docket: Vec<Dispute> = (0..4).map(|_| Dispute::new("m", claim.clone())).collect();
    let reference = service.resolve_many(&docket);

    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    // First docket inlines the body (never sent before) — resolves from
    // the request-local bodies even though the cache forgets it at once.
    assert_eq!(client.resolve_docket(&docket).unwrap(), reference);
    // Second docket references the claim digest-only, the judge answers
    // NeedPayload, and the client resends with the body inlined.
    assert_eq!(client.resolve_docket(&docket).unwrap(), reference);
    assert!(!client.is_broken());
    server.shutdown().unwrap();
}

#[test]
fn full_client_surface_round_trips() {
    let (test, outcome) = embedded(72);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().max_docket(4).build().unwrap());
    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();

    let pong = client.ping().unwrap();
    assert_eq!(pong.protocol_version, proto::PROTOCOL_VERSION);
    assert_eq!(pong.models_registered, 0);
    assert_eq!(pong.claims_cached, 0);

    assert_eq!(client.register_model("m", &outcome.model).unwrap(), 12);
    // Same model again: the client registers by digest reference, and the
    // judge reuses the compiled form instead of recompiling.
    assert_eq!(client.register_model("aaa", &outcome.model).unwrap(), 12);
    assert_eq!(
        service.compile_count(),
        1,
        "digest re-registration reuses the compiled form"
    );
    assert_eq!(client.list_models().unwrap(), ["aaa", "m"], "listings are sorted");

    let report = client.resolve("m", &claim).unwrap();
    assert_eq!(report, service.resolve("m", &claim).unwrap());
    assert!(report.verified);

    // Typed errors reconstruct on the client side.
    assert!(matches!(
        client.resolve("ghost", &claim).unwrap_err(),
        WatermarkError::UnknownModel { model_id } if model_id == "ghost"
    ));
    let oversized: Vec<Dispute> = (0..5).map(|_| Dispute::new("m", claim.clone())).collect();
    assert!(matches!(
        client.resolve_docket(&oversized).unwrap_err(),
        WatermarkError::DocketTooLarge { size: 5, max: 4 }
    ));

    // Dockets feed the judge's content cache, visible in the next pong.
    let docket: Vec<Dispute> = (0..2).map(|_| Dispute::new("m", claim.clone())).collect();
    assert!(client.resolve_docket(&docket).unwrap()[0].as_ref().unwrap().verified);
    assert_eq!(client.ping().unwrap().claims_cached, 1, "duplicates cached once");

    assert!(client.deregister("aaa").unwrap());
    assert!(
        !client.deregister("aaa").unwrap(),
        "second deregister reports absence"
    );
    assert_eq!(client.list_models().unwrap(), ["m"]);
    // The connection survives all of the above on one socket.
    assert!(client.resolve("m", &claim).unwrap().verified);
    server.shutdown().unwrap();
}

#[test]
fn register_over_wire_matches_local_registration() {
    let (test, outcome) = embedded(73);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    client.register_model("wire", &outcome.model).unwrap();

    // The model deserialized server-side behaves exactly like the local one.
    let local = DisputeService::builder().build().unwrap();
    local.register("wire", &outcome.model);
    assert_eq!(
        client.resolve("wire", &claim).unwrap(),
        local.resolve("wire", &claim).unwrap()
    );
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Negative paths, driven over a raw socket
// ---------------------------------------------------------------------------

fn raw_connection(server: &RunningServer) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

fn read_error_response(stream: &mut TcpStream) -> (u64, WireFault) {
    let mut reader = BufReader::new(stream);
    let (corr, response): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .expect("server answers before closing")
            .expect("server answers before closing");
    match response {
        Response::Error { fault } => (corr, fault),
        other => panic!("expected an error response, got {other:?}"),
    }
}

/// One raw request/response exchange with correlation id `corr`.
fn exchange(reader: &mut BufReader<TcpStream>, corr: u64, request: &Request) -> (u64, Response) {
    proto::write_message(reader.get_mut(), corr, request).unwrap();
    proto::read_message(reader, proto::DEFAULT_MAX_FRAME_BYTES)
        .unwrap()
        .expect("server answers")
}

#[test]
fn bad_magic_gets_an_error_response_and_a_closed_connection() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let (corr, fault) = read_error_response(&mut stream);
    assert_eq!(
        corr,
        proto::NO_CORRELATION,
        "frame-level faults carry the reserved id"
    );
    assert!(matches!(fault, WireFault::BadRequest { .. }));
    // The server closed its side: the next read is EOF.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    server.shutdown().unwrap();
}

/// A WDTP v1 peer has a 10-byte header (no correlation id). The server
/// must refuse it with a version fault as soon as the 6-byte prelude
/// arrives — not stall waiting for the full v4 header or misparse the v1
/// length prefix as correlation bits.
#[test]
fn v1_client_is_refused_with_a_version_fault() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    // Hand-built v1 frame: magic + version 1 + u32 length + payload.
    let payload = b"\x00";
    let mut frame = Vec::new();
    frame.extend_from_slice(proto::PROTO_MAGIC);
    frame.extend_from_slice(&1u16.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame).unwrap();
    match read_error_response(&mut stream) {
        (corr, WireFault::UnsupportedProtocolVersion { found, supported }) => {
            assert_eq!(corr, proto::NO_CORRELATION);
            assert_eq!(found, 1);
            assert_eq!(supported, proto::PROTOCOL_VERSION);
        }
        (_, other) => panic!("expected a version fault, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn future_protocol_version_is_refused_with_a_structured_fault() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    let mut frame = proto::encode_frame(1, &Request::Ping).unwrap();
    frame[4..6].copy_from_slice(&999u16.to_le_bytes());
    stream.write_all(&frame).unwrap();
    match read_error_response(&mut stream) {
        (_, WireFault::UnsupportedProtocolVersion { found, supported }) => {
            assert_eq!(found, 999);
            assert_eq!(supported, proto::PROTOCOL_VERSION);
        }
        (_, other) => panic!("expected a version fault, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn oversized_length_prefix_is_refused_without_reading_the_payload() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = JudgeServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            max_frame_bytes: 1024,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn();
    let mut stream = raw_connection(&server);
    stream.write_all(&raw_anonymous_header(77, u32::MAX)).unwrap();
    // No payload is ever sent — the server must answer from the header
    // alone instead of waiting for 4 GiB.
    match read_error_response(&mut stream) {
        (corr, WireFault::FrameTooLarge { size, max }) => {
            assert_eq!(corr, 77, "the offending request's id is echoed");
            assert_eq!(size, u64::from(u32::MAX));
            assert_eq!(max, 1024);
        }
        (_, other) => panic!("expected a frame-size fault, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn half_closed_socket_mid_frame_does_not_wedge_the_server() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = start_server(Arc::clone(&service));

    // A client sends half a frame, then closes its write side.
    let frame = proto::encode_frame(3, &Request::ListModels).unwrap();
    let mut stream = raw_connection(&server);
    stream.write_all(&frame[..frame.len() / 2]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    // The server detects the truncation and answers a BadRequest fault
    // (best effort) before closing — it must not hang on the missing half.
    assert!(matches!(
        read_error_response(&mut stream),
        (_, WireFault::BadRequest { .. })
    ));

    // And the server is still fully alive for the next client.
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    assert_eq!(client.ping().unwrap().protocol_version, proto::PROTOCOL_VERSION);
    server.shutdown().unwrap();
}

#[test]
fn half_closed_socket_between_frames_is_a_clean_goodbye() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    // A complete ping, then a write-side shutdown: the server answers the
    // ping and closes without inventing an error.
    stream.write_all(&proto::encode_frame(9, &Request::Ping).unwrap()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reader = BufReader::new(&mut stream);
    let (corr, response): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .expect("the ping sent before the shutdown is answered");
    assert_eq!(corr, 9);
    assert!(matches!(response, Response::Pong { .. }));
    assert!(
        proto::read_message::<Response, _>(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .is_none(),
        "no further frames: the server closes cleanly"
    );
    server.shutdown().unwrap();
}

#[test]
fn garbage_payload_in_a_valid_frame_keeps_the_connection_usable() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let mut stream = raw_connection(&server);
    // A well-framed payload that is not a decodable Request: framing stays
    // synchronized, so the server answers an error and keeps the socket.
    let payload = [0x3Fu8; 16]; // unknown value tag
    let mut frame = raw_anonymous_header(21, payload.len() as u32);
    frame.extend_from_slice(&payload);
    // Follow up with a valid ping *on the same socket*.
    frame.extend_from_slice(&proto::encode_frame(22, &Request::Ping).unwrap());
    stream.write_all(&frame).unwrap();

    let mut reader = BufReader::new(stream);
    let (first_corr, first): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
    assert_eq!(first_corr, 21, "the decode failure is attributed to its frame");
    assert!(matches!(
        first,
        Response::Error {
            fault: WireFault::BadRequest { .. }
        }
    ));
    let (second_corr, second): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
    assert_eq!(second_corr, 22);
    assert!(
        matches!(second, Response::Pong { .. }),
        "the connection survived the bad payload"
    );
    server.shutdown().unwrap();
}

/// A digest the judge has never seen — in a docket reference or a model
/// reference — is answered with `NeedPayload` naming exactly that digest;
/// uploading the body via `Payload` then makes the same reference
/// resolvable.
#[test]
fn unknown_digests_get_a_need_payload_answer_and_uploads_cure_it() {
    let (test, outcome) = embedded(78);
    let claim = claim_for(&outcome, &test);
    let digest = PayloadDigest::of_claim(&claim);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("m", &outcome.model);
    let reference = service.resolve("m", &claim).unwrap();
    let server = start_server(Arc::clone(&service));
    let mut reader = BufReader::new(raw_connection(&server));

    // Digest-only docket before any upload: NeedPayload, no verdicts.
    let request = Request::ResolveDocketRef {
        bodies: vec![],
        disputes: vec![DisputeRef::new("m", digest)],
    };
    let (corr, response) = exchange(&mut reader, 5, &request);
    assert_eq!(corr, 5);
    assert_eq!(
        response,
        Response::NeedPayload {
            digests: vec![digest]
        }
    );

    // Upload the body; the judge echoes the digest it computed.
    let (corr, response) = exchange(
        &mut reader,
        6,
        &Request::Payload {
            claims: vec![claim.clone()],
        },
    );
    assert_eq!(corr, 6);
    assert_eq!(
        response,
        Response::PayloadStored {
            digests: vec![digest]
        }
    );

    // The same digest-only docket now resolves, bit-identical.
    let (corr, response) = exchange(&mut reader, 7, &request);
    assert_eq!(corr, 7);
    match response {
        Response::Docket { verdicts } => {
            assert_eq!(verdicts.len(), 1);
            assert_eq!(verdicts[0].clone().into_result().unwrap(), reference);
        }
        other => panic!("expected verdicts, got {other:?}"),
    }

    // Model references behave the same way.
    let ghost = PayloadDigest::of_claim(&claim); // any digest no *model* has
    let (corr, response) = exchange(
        &mut reader,
        8,
        &Request::RegisterModelRef {
            model_id: "copy".to_string(),
            digest: ghost,
        },
    );
    assert_eq!(corr, 8);
    assert_eq!(response, Response::NeedPayload { digests: vec![ghost] });
    server.shutdown().unwrap();
}

/// Raw interleaving: two requests written back-to-back are both answered,
/// each under its own correlation id, whatever order the judge finishes
/// them in.
#[test]
fn interleaved_requests_complete_out_of_order_by_correlation_id() {
    let (test, outcome) = embedded(79);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("m", &outcome.model);
    let server = start_server(Arc::clone(&service));
    let mut reader = BufReader::new(raw_connection(&server));

    // A slow docket then a fast ping, pipelined in one write burst.
    let docket = Request::ResolveDocket {
        disputes: (0..8).map(|_| Dispute::new("m", claim.clone())).collect(),
    };
    let mut burst = proto::encode_frame(100, &docket).unwrap();
    burst.extend_from_slice(&proto::encode_frame(101, &Request::Ping).unwrap());
    reader.get_mut().write_all(&burst).unwrap();

    let mut seen = std::collections::HashMap::new();
    for _ in 0..2 {
        let (corr, response): (u64, Response) =
            proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .expect("both pipelined requests are answered");
        seen.insert(corr, response);
    }
    assert!(matches!(seen.get(&101), Some(Response::Pong { .. })));
    match seen.get(&100) {
        Some(Response::Docket { verdicts }) => assert_eq!(verdicts.len(), 8),
        other => panic!("expected docket verdicts, got {other:?}"),
    }
    server.shutdown().unwrap();
}

/// A judge answering a correlation id the client never sent poisons the
/// connection: pairing is lost, so any further exchange could
/// misattribute verdicts.
#[test]
fn an_unknown_correlation_id_poisons_the_client() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let rogue = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (corr, _request): (u64, Request) =
            proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
        // Answer under a different id than the request carried.
        proto::write_message(
            &mut stream,
            corr ^ 0xDEAD,
            &Response::Models { model_ids: vec![] },
        )
        .unwrap();
    });

    let mut client = DisputeClient::connect(addr).unwrap();
    match client.ping().unwrap_err() {
        WatermarkError::ProtocolViolation { detail } => {
            assert!(detail.contains("correlation id"), "unexpected detail: {detail}")
        }
        other => panic!("expected a correlation violation, got {other:?}"),
    }
    assert!(client.is_broken());
    rogue.join().unwrap();
}

#[test]
fn connect_retry_covers_a_late_binding_judge() {
    // Nothing is listening on this port yet.
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);

    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server_thread = std::thread::spawn(move || {
        // Bind only after the client's first attempt has likely failed.
        std::thread::sleep(Duration::from_millis(150));
        JudgeServer::bind(addr, service, ServerConfig::default()).unwrap().spawn()
    });
    let mut client = DisputeClient::connect_with(
        addr,
        ClientConfig {
            connect_attempts: 10,
            retry_backoff: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
    .expect("retries outlast the judge's late bind");
    assert_eq!(client.ping().unwrap().models_registered, 0);
    server_thread.join().unwrap().shutdown().unwrap();

    // With no judge at all, the retries exhaust into a typed Io error.
    let gone = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = gone.local_addr().unwrap();
    drop(gone);
    let err = DisputeClient::connect_with(
        dead_addr,
        ClientConfig {
            connect_attempts: 2,
            retry_backoff: Duration::from_millis(10),
            connect_timeout: Some(Duration::from_millis(200)),
            ..ClientConfig::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, WatermarkError::Io { .. }));
}

/// The exponential backoff between connect attempts is capped by
/// `max_retry_backoff`: many attempts retry steadily instead of doubling
/// into multi-minute sleeps.
#[test]
fn connect_backoff_is_capped() {
    let gone = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = gone.local_addr().unwrap();
    drop(gone);

    let started = Instant::now();
    let err = DisputeClient::connect_with(
        dead_addr,
        ClientConfig {
            connect_attempts: 4,
            retry_backoff: Duration::from_millis(200),
            max_retry_backoff: Duration::from_millis(250),
            connect_timeout: Some(Duration::from_millis(100)),
            ..ClientConfig::default()
        },
    )
    .unwrap_err();
    let elapsed = started.elapsed();
    assert!(matches!(err, WatermarkError::Io { .. }));
    // Capped sleeps: 200 + 250 + 250 = 700 ms. Uncapped doubling would be
    // 200 + 400 + 800 = 1400 ms; leave slack for scheduling noise.
    assert!(
        elapsed < Duration::from_millis(1200),
        "backoff was not capped: took {elapsed:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(600),
        "backoff did not happen at all: took {elapsed:?}"
    );
}

/// A socket-option failure after a successful connect counts as one
/// failed attempt — it must not abort the retry loop. `Duration::ZERO` is
/// rejected by `set_read_timeout`, which makes it a deterministic way to
/// force that path.
#[test]
fn a_socket_option_failure_counts_as_a_failed_attempt() {
    let server = start_server(Arc::new(DisputeService::builder().build().unwrap()));
    let err = DisputeClient::connect_with(
        server.addr(),
        ClientConfig {
            connect_attempts: 2,
            retry_backoff: Duration::from_millis(10),
            read_timeout: Some(Duration::ZERO),
            ..ClientConfig::default()
        },
    )
    .unwrap_err();
    match err {
        WatermarkError::Io { message, .. } => assert!(
            message.contains("could not connect after 2 attempts"),
            "the option failure must exhaust the retry budget, not abort: {message}"
        ),
        other => panic!("expected an Io error, got {other:?}"),
    }
    server.shutdown().unwrap();
}

/// `max_connections: 0` means unlimited: many held-open idle connections
/// must not stop new arrivals from being served.
#[test]
fn zero_max_connections_means_unlimited() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = JudgeServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            max_connections: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn();

    // Dozens of idle peers holding their sockets open.
    let idle: Vec<TcpStream> = (0..32).map(|_| TcpStream::connect(server.addr()).unwrap()).collect();

    // A real client is served immediately alongside them.
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    assert_eq!(client.ping().unwrap().protocol_version, proto::PROTOCOL_VERSION);
    drop(idle);
    drop(client);
    server.shutdown().unwrap();
}

/// Idle connections are reaped after `read_timeout` with no in-flight
/// requests, so slow-loris peers cost a descriptor only temporarily.
#[test]
fn idle_connections_are_reaped_after_the_read_timeout() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = JudgeServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            read_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn();

    let mut idle = raw_connection(&server);
    std::thread::sleep(Duration::from_millis(700));
    let mut rest = Vec::new();
    assert_eq!(
        idle.read_to_end(&mut rest).unwrap(),
        0,
        "the server closed the idle connection"
    );
    server.shutdown().unwrap();
}

/// Regression test for the shutdown nudge: a server bound to the
/// unspecified address reports `0.0.0.0:port`, and the wake-up nudge must
/// target loopback instead of connecting to `0.0.0.0` (whose behaviour is
/// platform-dependent).
#[test]
fn shutdown_completes_on_an_unspecified_address_bind() {
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = JudgeServer::bind("0.0.0.0:0", service, ServerConfig::default())
        .unwrap()
        .spawn();
    assert!(server.addr().ip().is_unspecified());

    let finished = std::thread::spawn(move || server.shutdown());
    let deadline = Instant::now() + Duration::from_secs(10);
    while !finished.is_finished() {
        assert!(
            Instant::now() < deadline,
            "shutdown wedged on an unspecified-address bind"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    finished.join().unwrap().unwrap();
}

#[test]
fn a_transport_error_poisons_the_client_connection() {
    let (test, outcome) = embedded(74);
    let claim = claim_for(&outcome, &test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("m", &outcome.model);
    let server = start_server(Arc::clone(&service));

    // A client whose receive cap is far below any real response frame:
    // the first exchange fails mid-stream (FrameTooLarge on the answer),
    // leaving the unread response bytes in the socket.
    let mut client = DisputeClient::connect_with(
        server.addr(),
        ClientConfig {
            max_frame_bytes: 16,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert!(!client.is_broken());
    assert!(matches!(
        client.resolve("m", &claim).unwrap_err(),
        WatermarkError::FrameTooLarge { .. }
    ));

    // Without poisoning, a retry would consume the stale response of the
    // first request and misattribute it. The client refuses instead.
    assert!(client.is_broken());
    match client.ping().unwrap_err() {
        WatermarkError::ProtocolViolation { detail } => {
            assert!(detail.contains("poisoned"), "unexpected detail: {detail}")
        }
        other => panic!("expected a poisoned-connection error, got {other:?}"),
    }

    // A fresh connection works fine; the server is unaffected.
    let mut fresh = DisputeClient::connect(server.addr()).unwrap();
    assert!(fresh.resolve("m", &claim).unwrap().verified);
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Frame authentication, tenant isolation, quotas (WDTP v4)
// ---------------------------------------------------------------------------

/// A keyed judge refuses anonymous frames with `AuthenticationFailed`,
/// and — because framing is intact — keeps the connection open for a
/// correctly authenticated retry.
#[test]
fn a_keyed_judge_refuses_anonymous_frames_but_keeps_the_connection() {
    let ring = two_tenant_ring();
    let auth = auth_for(&ring, "acme");
    let server = keyed_server(Arc::new(DisputeService::builder().build().unwrap()), ring);
    let mut reader = BufReader::new(raw_connection(&server));

    proto::write_message(reader.get_mut(), 1, &Request::Ping).unwrap();
    let (corr, response): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
    assert_eq!(corr, 1, "the refusal is attributed to the offending frame");
    match response {
        Response::Error { fault } => assert!(
            matches!(fault.into_error(), WatermarkError::AuthenticationFailed { .. }),
            "anonymous frames must fail authentication"
        ),
        other => panic!("expected an auth fault, got {other:?}"),
    }

    // The same socket, now with credentials: served normally.
    let tenant = auth.tenant().clone();
    let ring = two_tenant_ring();
    let frame =
        proto::encode_frame_auth(2, &Request::Ping, &tenant, 1, ring.key(&tenant).unwrap()).unwrap();
    reader.get_mut().write_all(&frame).unwrap();
    let (corr, response): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
    assert_eq!(corr, 2);
    assert!(matches!(response, Response::Pong { .. }));
    server.shutdown().unwrap();
}

/// A frame tagged under the wrong key — and one whose genuine tag was
/// truncated (trailing tag bytes zeroed) — are both refused without
/// poisoning the connection or advancing the sequence floor.
#[test]
fn bad_and_truncated_tags_are_refused_without_poisoning_the_connection() {
    let ring = two_tenant_ring();
    let tenant = TenantId::new("acme").unwrap();
    let key = ring.key(&tenant).unwrap().to_vec();
    let server = keyed_server(Arc::new(DisputeService::builder().build().unwrap()), ring);
    let mut reader = BufReader::new(raw_connection(&server));

    let expect_auth_fault = |reader: &mut BufReader<TcpStream>, want_corr: u64| {
        let (corr, response): (u64, Response) =
            proto::read_message(reader, proto::DEFAULT_MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(corr, want_corr);
        match response {
            Response::Error { fault } => assert!(matches!(
                fault.into_error(),
                WatermarkError::AuthenticationFailed { .. }
            )),
            other => panic!("expected an auth fault, got {other:?}"),
        }
    };

    // Wrong key: the tag never matches.
    let forged = proto::encode_frame_auth(7, &Request::Ping, &tenant, 1, b"not the key").unwrap();
    reader.get_mut().write_all(&forged).unwrap();
    expect_auth_fault(&mut reader, 7);

    // Genuine tag with its second half zeroed — a truncated MAC must be
    // treated as no MAC at all.
    let mut truncated = proto::encode_frame_auth(8, &Request::Ping, &tenant, 1, &key).unwrap();
    for byte in &mut truncated[46..54] {
        *byte = 0;
    }
    reader.get_mut().write_all(&truncated).unwrap();
    expect_auth_fault(&mut reader, 8);

    // Sequence 1 is still available: the refused frames must not have
    // advanced the replay floor.
    let genuine = proto::encode_frame_auth(9, &Request::Ping, &tenant, 1, &key).unwrap();
    reader.get_mut().write_all(&genuine).unwrap();
    let (corr, response): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
    assert_eq!(corr, 9);
    assert!(matches!(response, Response::Pong { .. }));
    server.shutdown().unwrap();
}

/// Replaying a previously accepted frame — a byte-identical copy, genuine
/// tag included — is refused: the sequence must be strictly increasing
/// within a connection.
#[test]
fn a_replayed_frame_is_refused_by_the_sequence_check() {
    let ring = two_tenant_ring();
    let tenant = TenantId::new("acme").unwrap();
    let key = ring.key(&tenant).unwrap().to_vec();
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = keyed_server(Arc::clone(&service), ring);
    let mut reader = BufReader::new(raw_connection(&server));

    let frame = proto::encode_frame_auth(11, &Request::Ping, &tenant, 1, &key).unwrap();
    reader.get_mut().write_all(&frame).unwrap();
    let (_, first): (u64, Response) = proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
        .unwrap()
        .unwrap();
    assert!(matches!(first, Response::Pong { .. }));

    // The identical bytes again: same genuine tag, same stale sequence.
    reader.get_mut().write_all(&frame).unwrap();
    let (corr, replayed): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
    assert_eq!(corr, 11);
    match replayed {
        Response::Error { fault } => match fault.into_error() {
            WatermarkError::AuthenticationFailed { detail } => {
                assert!(detail.contains("replayed"), "unexpected detail: {detail}")
            }
            other => panic!("expected an auth failure, got {other:?}"),
        },
        other => panic!("expected an auth fault, got {other:?}"),
    }
    // The refusal is visible in the tenant's accounting.
    assert!(service.ledger().counters(&tenant).auth_failures >= 1);

    // The connection survives; the next sequence is accepted.
    let next = proto::encode_frame_auth(12, &Request::Ping, &tenant, 2, &key).unwrap();
    reader.get_mut().write_all(&next).unwrap();
    let (corr, response): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
    assert_eq!(corr, 12);
    assert!(matches!(response, Response::Pong { .. }));
    server.shutdown().unwrap();
}

/// Tenants are namespaces: a model registered by one tenant is invisible
/// to another — resolution and deregistration are `Forbidden`, listings
/// are empty — while the owner's verdicts stay bit-identical to
/// in-process resolution.
#[test]
fn cross_tenant_model_access_is_forbidden() {
    let (model, claim) = plain_fixture(41);
    let ring = two_tenant_ring();
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = keyed_server(Arc::clone(&service), two_tenant_ring());

    let mut acme = DisputeClient::connect_authenticated(server.addr(), auth_for(&ring, "acme")).unwrap();
    let mut globex =
        DisputeClient::connect_authenticated(server.addr(), auth_for(&ring, "globex")).unwrap();

    acme.register_model("m", &model).unwrap();
    assert_eq!(acme.list_models().unwrap(), ["m"]);

    // The in-process reference, resolved in acme's namespace.
    let reference = service.resolve_as(&TenantId::new("acme").unwrap(), "m", &claim).unwrap();
    assert_eq!(acme.resolve("m", &claim).unwrap(), reference);

    // globex sees nothing of it.
    assert_eq!(globex.list_models().unwrap(), Vec::<String>::new());
    assert!(matches!(
        globex.resolve("m", &claim).unwrap_err(),
        WatermarkError::Forbidden { .. }
    ));
    assert!(matches!(
        globex.deregister("m").unwrap_err(),
        WatermarkError::Forbidden { .. }
    ));
    // And an id registered nowhere stays UnknownModel, not Forbidden.
    assert!(matches!(
        globex.resolve("nowhere", &claim).unwrap_err(),
        WatermarkError::UnknownModel { .. }
    ));

    // Stats are scoped: each tenant sees exactly its own row.
    let acme_stats = acme.stats().unwrap();
    assert_eq!(acme_stats.len(), 1);
    assert_eq!(acme_stats[0].tenant, "acme");
    assert_eq!(acme_stats[0].models, 1);
    let globex_stats = globex.stats().unwrap();
    assert_eq!(globex_stats.len(), 1);
    assert_eq!(globex_stats[0].tenant, "globex");
    assert_eq!(globex_stats[0].models, 0);
    server.shutdown().unwrap();
}

/// The models, docket and claim-bytes quotas each refuse with a typed
/// `QuotaExceeded` naming the exhausted axis, and a refusal never poisons
/// the connection.
#[test]
fn quota_refusals_name_the_axis_and_keep_the_connection() {
    let (model, claim) = plain_fixture(42);
    let quotas = TenantQuotas {
        max_models: 1,
        max_docket: 2,
        max_claim_bytes: 1,
        max_in_flight: 0,
    };
    let service = Arc::new(DisputeService::builder().tenant_quotas(quotas).build().unwrap());
    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();

    // Models axis: the second distinct registration is refused...
    client.register_model("first", &model).unwrap();
    match client.register_model("second", &model).unwrap_err() {
        WatermarkError::QuotaExceeded {
            resource,
            used,
            limit,
        } => {
            assert_eq!(resource, "models");
            assert_eq!((used, limit), (2, 1));
        }
        other => panic!("expected a models quota refusal, got {other:?}"),
    }
    // ...but re-registering the held id is not growth.
    client.register_model("first", &model).unwrap();

    // Docket axis: checked before any claim body is cached.
    let oversized: Vec<Dispute> = (0..3).map(|_| Dispute::new("first", claim.clone())).collect();
    match client.resolve_docket(&oversized).unwrap_err() {
        WatermarkError::QuotaExceeded { resource, .. } => assert_eq!(resource, "docket"),
        other => panic!("expected a docket quota refusal, got {other:?}"),
    }
    assert_eq!(service.claims().len(), 0, "refused dockets cache nothing");

    // Claim-bytes axis: a docket within the size cap still cannot
    // allocate cache bytes beyond the tenant's budget.
    let docket: Vec<Dispute> = (0..2).map(|_| Dispute::new("first", claim.clone())).collect();
    match client.resolve_docket(&docket).unwrap_err() {
        WatermarkError::QuotaExceeded { resource, .. } => assert_eq!(resource, "claim-bytes"),
        other => panic!("expected a claim-bytes quota refusal, got {other:?}"),
    }
    assert_eq!(service.claims().len(), 0);

    // The connection survived every refusal.
    assert!(!client.is_broken());
    assert_eq!(client.list_models().unwrap(), ["first"]);
    server.shutdown().unwrap();
}

/// The in-flight quota refuses the second of two pipelined requests while
/// the first still occupies the tenant's only slot — before any work is
/// spawned for it.
#[test]
fn the_in_flight_quota_sheds_pipelined_load() {
    let mut rng = SmallRng::seed_from_u64(43);
    let dataset = SyntheticSpec::breast_cancer_like().scaled(0.3).generate(&mut rng);
    let (trigger, test) = dataset.split_train_test(0.2, &mut rng);
    let model = RandomForest::fit(&dataset, &ForestParams::with_trees(8), &mut rng);
    let quotas = TenantQuotas {
        max_in_flight: 1,
        ..TenantQuotas::default()
    };
    let service = Arc::new(DisputeService::builder().tenant_quotas(quotas).build().unwrap());
    service.register("m", &model);
    let server = start_server(Arc::clone(&service));
    let mut reader = BufReader::new(raw_connection(&server));

    // One slow docket and one ping in a single write burst: the ping is
    // dispatched while the docket still holds the only in-flight slot.
    // Each dispute carries a *distinct* signature so the service cannot
    // deduplicate them — 64 genuine resolutions keep the worker busy far
    // beyond the event loop's hop from the docket dispatch to the ping
    // dispatch. The overlap still depends on both frames reaching one
    // socket read (loopback may split the burst and let the docket
    // finish in the gap), so the burst retries until the shed is
    // observed — each round also re-proves the slot was released.
    let docket = Request::ResolveDocket {
        disputes: (0..64)
            .map(|_| {
                let claim = OwnershipClaim::new(
                    Signature::random(8, 0.5, &mut rng),
                    trigger.clone(),
                    test.clone(),
                );
                Dispute::new("m", claim)
            })
            .collect(),
    };
    let mut shed = None;
    for round in 0..50u64 {
        let (docket_corr, ping_corr) = (200 + 2 * round, 201 + 2 * round);
        let mut burst = proto::encode_frame(docket_corr, &docket).unwrap();
        burst.extend_from_slice(&proto::encode_frame(ping_corr, &Request::Ping).unwrap());
        reader.get_mut().write_all(&burst).unwrap();

        let mut docket_response = None;
        let mut ping_response = None;
        for _ in 0..2 {
            let (corr, response): (u64, Response) =
                proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
                    .unwrap()
                    .unwrap();
            if corr == docket_corr {
                docket_response = Some(response);
            } else {
                assert_eq!(corr, ping_corr, "response for a request never sent");
                ping_response = Some(response);
            }
        }
        match docket_response.expect("the docket is always served") {
            Response::Docket { .. } => {}
            other => panic!("the docket itself must never be refused, got {other:?}"),
        }
        match ping_response.expect("the ping is always answered") {
            Response::Error { fault } => {
                match fault.into_error() {
                    WatermarkError::QuotaExceeded { resource, .. } => {
                        assert_eq!(resource, "in-flight")
                    }
                    other => panic!("expected an in-flight quota refusal, got {other:?}"),
                }
                shed = Some(round);
                break;
            }
            // Pong: the docket finished before the ping dispatched
            // (split burst) — the slot demonstrably freed, go again.
            Response::Pong { .. } => {}
            other => panic!("unexpected ping response {other:?}"),
        }
    }
    shed.expect("50 pipelined bursts against a 1-slot quota never overlapped");

    // The slot was released: a fresh request is served.
    proto::write_message(reader.get_mut(), 202, &Request::Ping).unwrap();
    let (corr, response): (u64, Response) =
        proto::read_message(&mut reader, proto::DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
    assert_eq!(corr, 202);
    assert!(matches!(response, Response::Pong { .. }));
    server.shutdown().unwrap();
}

/// A judge whose model-cache budget holds one compiled forest keeps
/// serving both registered models over the wire: the LRU one is evicted
/// and transparently recompiled from its artefact on demand, verdicts
/// bit-identical throughout.
#[test]
fn evicted_models_recompile_transparently_over_the_wire() {
    let (model, claim) = plain_fixture(44);
    let dir = std::env::temp_dir().join(format!("wdte-wire-evict-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("a.wdte");
    let path_b = dir.join("b.wdte");
    persist::save(&path_a, &model, persist::Format::Binary).unwrap();
    persist::save(&path_b, &model, persist::Format::Binary).unwrap();

    // A 1-byte budget keeps only the most recently published model
    // resident (the budget never evicts the model being published).
    let service = Arc::new(DisputeService::builder().model_cache_bytes(1).build().unwrap());
    service.register_from_file("a", &path_a).unwrap();
    service.register_from_file("b", &path_b).unwrap();

    let reference = {
        let plain = DisputeService::builder().build().unwrap();
        plain.register("any", &model);
        plain.resolve("any", &claim).unwrap()
    };

    let server = start_server(Arc::clone(&service));
    let mut client = DisputeClient::connect(server.addr()).unwrap();
    // Alternating resolutions force evict → recompile each time.
    for round in 0..3 {
        for id in ["a", "b"] {
            assert_eq!(
                client.resolve(id, &claim).unwrap(),
                reference,
                "round {round}, model {id}: recompiled verdicts must not drift"
            );
        }
    }
    let anonymous = TenantId::anonymous();
    let counters = service.ledger().counters(&anonymous);
    assert!(
        counters.evictions >= 5,
        "alternating under a 1-byte budget must evict every round (saw {})",
        counters.evictions
    );
    assert!(
        counters.cache_misses >= 5,
        "every eviction shows up as a later recompile miss (saw {})",
        counters.cache_misses
    );
    // Both models are still *registered* — eviction only drops residency.
    assert_eq!(client.list_models().unwrap(), ["a", "b"]);
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown().unwrap();
}

/// Deregistering a model drops its cached claim bodies: a digest-only
/// docket that resolved before the deregistration demands the payload
/// again afterwards — stale digests can never be served against a new
/// model under the same id.
#[test]
fn deregistration_drops_cached_claims_over_the_wire() {
    let (model, claim) = plain_fixture(45);
    let digest = PayloadDigest::of_claim(&claim);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    let server = start_server(Arc::clone(&service));
    let mut reader = BufReader::new(raw_connection(&server));

    let (_, registered) = exchange(
        &mut reader,
        1,
        &Request::RegisterModel {
            model_id: "m".to_string(),
            model: model.clone(),
        },
    );
    assert!(matches!(registered, Response::Registered { .. }));

    // Full-body docket caches the claim and associates it with "m".
    let (_, first) = exchange(
        &mut reader,
        2,
        &Request::ResolveDocket {
            disputes: vec![Dispute::new("m", claim.clone())],
        },
    );
    assert!(matches!(first, Response::Docket { .. }));
    // Digest-only resolves while the association lives.
    let by_ref = Request::ResolveDocketRef {
        bodies: vec![],
        disputes: vec![DisputeRef::new("m", digest)],
    };
    let (_, second) = exchange(&mut reader, 3, &by_ref);
    assert!(matches!(second, Response::Docket { .. }));

    let (_, gone) = exchange(
        &mut reader,
        4,
        &Request::Deregister {
            model_id: "m".to_string(),
        },
    );
    assert_eq!(
        gone,
        Response::Deregistered {
            model_id: "m".to_string(),
            existed: true
        }
    );
    assert_eq!(service.claims().len(), 0, "the model's claims died with it");

    // Re-register under the same id: the old digest must NOT resolve from
    // a stale cache entry — the judge demands the body afresh.
    let (_, re_registered) = exchange(
        &mut reader,
        5,
        &Request::RegisterModel {
            model_id: "m".to_string(),
            model,
        },
    );
    assert!(matches!(re_registered, Response::Registered { .. }));
    let (_, demanded) = exchange(&mut reader, 6, &by_ref);
    assert_eq!(
        demanded,
        Response::NeedPayload {
            digests: vec![digest]
        }
    );
    server.shutdown().unwrap();
}

/// An authenticated client and an anonymous client of an open judge get
/// bit-identical verdicts for the same docket: authentication wraps the
/// frames, never the resolution.
#[test]
fn authenticated_verdicts_are_bit_identical_to_anonymous_ones() {
    let (model, claim) = plain_fixture(46);
    let docket: Vec<Dispute> = (0..4)
        .map(|i| Dispute::new(if i == 2 { "ghost" } else { "m" }, claim.clone()))
        .collect();

    // Anonymous service + open judge.
    let open_service = Arc::new(DisputeService::builder().build().unwrap());
    open_service.register("m", &model);
    let open = start_server(Arc::clone(&open_service));
    let mut anonymous = DisputeClient::connect(open.addr()).unwrap();
    let plain_verdicts = anonymous.resolve_docket(&docket).unwrap();

    // Keyed judge, same docket resolved as a tenant.
    let ring = two_tenant_ring();
    let keyed_service = Arc::new(DisputeService::builder().build().unwrap());
    let keyed = keyed_server(Arc::clone(&keyed_service), two_tenant_ring());
    let mut tenant_client =
        DisputeClient::connect_authenticated(keyed.addr(), auth_for(&ring, "acme")).unwrap();
    tenant_client.register_model("m", &model).unwrap();
    let auth_verdicts = tenant_client.resolve_docket(&docket).unwrap();

    assert_eq!(
        auth_verdicts, plain_verdicts,
        "authentication must never change a verdict"
    );
    // The tenant's accounting saw the docket.
    let stats = tenant_client.stats().unwrap();
    assert_eq!(stats[0].tenant, "acme");
    assert_eq!(stats[0].dockets, 1);
    assert_eq!(stats[0].claims, 4);
    open.shutdown().unwrap();
    keyed.shutdown().unwrap();
}
