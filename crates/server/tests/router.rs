//! Integration suite for the judge-fleet router: bit-identity of routed
//! dockets against in-process resolution (anonymous and authenticated),
//! consistent-hash placement across real backend servers, degradation of
//! a dead backend into typed faults, sibling retry over a replicated
//! warm start, `NeedPayload` relay through the fan-out, and the
//! fleet-wide aggregation requests.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wdte_core::error::WatermarkError;
use wdte_core::{
    persist, Dispute, DisputeService, HashRing, KeyRing, ManifestEntry, ModelManifest, OwnershipClaim,
    Signature, TenantId, WatermarkConfig, WatermarkOutcome, Watermarker,
};
use wdte_data::{Dataset, SyntheticSpec};
use wdte_server::{
    ClientAuth, DisputeClient, JudgeRouter, JudgeServer, RouterConfig, RunningRouter, RunningServer,
    ServerConfig,
};

fn embedded(seed: u64) -> (Dataset, WatermarkOutcome) {
    let dataset = SyntheticSpec::breast_cancer_like()
        .scaled(0.6)
        .generate(&mut SmallRng::seed_from_u64(seed));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
    let (train, test) = dataset.split_stratified(0.75, &mut rng);
    let signature = Signature::random(12, 0.5, &mut rng);
    let watermarker = Watermarker::new(WatermarkConfig {
        num_trees: 12,
        ..WatermarkConfig::fast()
    });
    let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
    (test, outcome)
}

fn claim_for(outcome: &WatermarkOutcome, test: &Dataset) -> OwnershipClaim {
    OwnershipClaim::new(
        outcome.signature.clone(),
        outcome.trigger_set.clone(),
        test.clone(),
    )
}

/// A genuine/forged docket cycling `models` model ids with one ghost id
/// in the middle — the shape every routing test resolves.
fn mixed_docket(
    test: &Dataset,
    outcome: &WatermarkOutcome,
    models: usize,
    claims: usize,
) -> Vec<Dispute> {
    let genuine = claim_for(outcome, test);
    let mut rng = SmallRng::seed_from_u64(0x0DD);
    let forged = OwnershipClaim::new(
        Signature::random(12, 0.5, &mut rng),
        test.select(&test.sample_indices(outcome.trigger_set.len(), &mut rng)).unwrap(),
        test.clone(),
    );
    (0..claims)
        .map(|i| {
            let claim = if i % 2 == 0 {
                genuine.clone()
            } else {
                forged.clone()
            };
            let id = if i == claims / 2 {
                "fleet-ghost".to_string()
            } else {
                format!("fleet-m{}", i % models)
            };
            Dispute::new(id, claim)
        })
        .collect()
}

fn start_backend(service: Arc<DisputeService>, ring: Option<Arc<KeyRing>>) -> RunningServer {
    JudgeServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            key_ring: ring,
            ..ServerConfig::default()
        },
    )
    .expect("loopback bind succeeds")
    .spawn()
}

fn start_router(backends: &[&RunningServer], ring: Option<Arc<KeyRing>>) -> RunningRouter {
    JudgeRouter::bind(
        "127.0.0.1:0",
        RouterConfig {
            backends: backends.iter().map(|b| b.addr().to_string()).collect(),
            key_ring: ring,
            ..RouterConfig::default()
        },
    )
    .expect("loopback bind succeeds")
    .spawn()
}

fn fresh_fleet(n: usize) -> (Vec<RunningServer>, RunningRouter) {
    let backends: Vec<RunningServer> = (0..n)
        .map(|_| start_backend(Arc::new(DisputeService::builder().build().unwrap()), None))
        .collect();
    let router = start_router(&backends.iter().collect::<Vec<_>>(), None);
    (backends, router)
}

/// Ring home of each `fleet-m{i}` id under the router's default ring.
fn homes(models: usize, backends: usize, tenant: &TenantId) -> Vec<usize> {
    let ring = HashRing::new(backends, RouterConfig::default().ring_replicas).unwrap();
    (0..models).map(|i| ring.home(tenant, &format!("fleet-m{i}"))).collect()
}

/// Acceptance gate of the fleet layer: a 48-claim docket resolved
/// through the router across two live backends — including a dispute
/// naming a model no backend knows — is bit-identical to in-process
/// `resolve_many`, sequentially and when pipelined out of order.
#[test]
fn routed_docket_is_bit_identical_to_in_process_resolution() {
    let (test, outcome) = embedded(71);
    let docket = mixed_docket(&test, &outcome, 4, 48);
    let reference_service = DisputeService::builder().build().unwrap();
    for i in 0..4 {
        reference_service.register(format!("fleet-m{i}"), &outcome.model);
    }
    let reference = reference_service.resolve_many(&docket);

    let (_backends, router) = fresh_fleet(2);
    let mut client = DisputeClient::connect(router.addr().to_string()).unwrap();
    for i in 0..4 {
        assert_eq!(
            client.register_model(format!("fleet-m{i}"), &outcome.model).unwrap(),
            outcome.model.num_trees()
        );
    }
    let served = client.resolve_docket(&docket).unwrap();
    assert_eq!(served.len(), reference.len());
    for (i, (remote, local)) in served.iter().zip(&reference).enumerate() {
        assert_eq!(remote, local, "verdict {i} diverged through the fleet");
    }
    let upheld = served.iter().filter(|v| v.as_ref().is_ok_and(|r| r.verified)).count();
    assert!(
        upheld > 0 && upheld < docket.len(),
        "docket must mix verdicts, got {upheld} upheld"
    );

    // Pipelined dockets redeemed in reverse must stitch identically.
    let tickets = [
        client.send_docket(&docket).unwrap(),
        client.send_docket(&docket).unwrap(),
        client.send_docket(&docket).unwrap(),
    ];
    for ticket in tickets.into_iter().rev() {
        assert_eq!(client.recv_docket(ticket).unwrap(), served);
    }
    router.shutdown().unwrap();
}

/// Wire registration places each model on exactly its ring home, and
/// the routed `ListModels` is the union of the per-backend inventories.
#[test]
fn models_land_on_their_consistent_hash_homes() {
    let (test, outcome) = embedded(72);
    let _ = test;
    let (backends, router) = fresh_fleet(3);
    let mut client = DisputeClient::connect(router.addr().to_string()).unwrap();
    let models = 8;
    for i in 0..models {
        client.register_model(format!("fleet-m{i}"), &outcome.model).unwrap();
    }
    let union = client.list_models().unwrap();
    assert_eq!(union.len(), models);

    let homes = homes(models, backends.len(), &TenantId::anonymous());
    let distinct: std::collections::HashSet<usize> = homes.iter().copied().collect();
    assert!(
        distinct.len() >= 2,
        "8 keys over 3 backends should spread, got homes {homes:?}"
    );
    for (backend, server) in backends.iter().enumerate() {
        let mut direct = DisputeClient::connect(server.addr().to_string()).unwrap();
        let here = direct.list_models().unwrap();
        for (i, home) in homes.iter().enumerate() {
            assert_eq!(
                here.contains(&format!("fleet-m{i}")),
                *home == backend,
                "fleet-m{i} misplaced on backend {backend} (homes {homes:?})"
            );
        }
    }
    router.shutdown().unwrap();
}

/// The authenticated fleet: a keyed router in front of keyed backends
/// re-signs per backend, verdicts stay bit-identical, and a client with
/// the wrong secret is refused at the router.
#[test]
fn authenticated_routed_docket_is_bit_identical() {
    let ring = Arc::new(KeyRing::parse("acme:correct horse battery staple\n").unwrap());
    let tenant = TenantId::new("acme").unwrap();
    let auth = ClientAuth::new(tenant.clone(), ring.key(&tenant).unwrap().to_vec());

    let (test, outcome) = embedded(73);
    let docket = mixed_docket(&test, &outcome, 4, 32);
    let reference_service = DisputeService::builder().build().unwrap();
    for i in 0..4 {
        reference_service
            .register_digested_as(&tenant, format!("fleet-m{i}"), &outcome.model)
            .unwrap();
    }
    let reference: Vec<_> = docket
        .iter()
        .map(|d| reference_service.resolve_as(&tenant, &d.model_id, &d.claim))
        .collect();

    let backends: Vec<RunningServer> = (0..2)
        .map(|_| {
            start_backend(
                Arc::new(DisputeService::builder().build().unwrap()),
                Some(Arc::clone(&ring)),
            )
        })
        .collect();
    let router = start_router(&backends.iter().collect::<Vec<_>>(), Some(Arc::clone(&ring)));

    let mut client = DisputeClient::connect_authenticated(router.addr().to_string(), auth).unwrap();
    for i in 0..4 {
        client.register_model(format!("fleet-m{i}"), &outcome.model).unwrap();
    }
    let served = client.resolve_docket(&docket).unwrap();
    assert_eq!(served, reference);

    // A forged secret must be refused before any request is served.
    let intruder = ClientAuth::new(tenant.clone(), b"wrong secret".to_vec());
    let refused = DisputeClient::connect_authenticated(router.addr().to_string(), intruder)
        .and_then(|mut c| c.ping());
    assert!(refused.is_err(), "router accepted a forged tenant secret");
    router.shutdown().unwrap();
}

/// Graceful degradation: with one backend dead, disputes homed on the
/// survivors stay bit-identical while disputes homed on the corpse fail
/// with a *typed* fault naming the unreachable backend — the docket
/// still completes, nothing hangs.
#[test]
fn dead_backend_degrades_to_typed_faults_for_its_shard_only() {
    let (test, outcome) = embedded(74);
    let models = 6;
    let docket = mixed_docket(&test, &outcome, models, 36);
    let reference_service = DisputeService::builder().build().unwrap();
    for i in 0..models {
        reference_service.register(format!("fleet-m{i}"), &outcome.model);
    }
    let reference = reference_service.resolve_many(&docket);

    let (mut backends, router) = fresh_fleet(2);
    let mut client = DisputeClient::connect(router.addr().to_string()).unwrap();
    for i in 0..models {
        client.register_model(format!("fleet-m{i}"), &outcome.model).unwrap();
    }
    let homes = homes(models, 2, &TenantId::anonymous());
    let dead = 0usize;
    assert!(
        homes.contains(&dead) && homes.iter().any(|h| *h != dead),
        "homes {homes:?}"
    );
    backends.remove(dead).shutdown().unwrap();

    let served = client.resolve_docket(&docket).unwrap();
    // The ghost id exists nowhere, but the router only asserts
    // nonexistence while the ghost's authoritative home is alive; with
    // that home dead it reports unreachability instead.
    let ghost_home = HashRing::new(2, RouterConfig::default().ring_replicas)
        .unwrap()
        .home(&TenantId::anonymous(), "fleet-ghost");
    let mut dead_homed = 0;
    for (i, (remote, local)) in served.iter().zip(&reference).enumerate() {
        let id = &docket[i].model_id;
        let on_dead = if id == "fleet-ghost" {
            ghost_home == dead
        } else {
            homes[id.strip_prefix("fleet-m").unwrap().parse::<usize>().unwrap()] == dead
        };
        if on_dead {
            dead_homed += 1;
            match remote {
                Err(WatermarkError::Remote { message }) => {
                    assert!(
                        message.contains("unreachable"),
                        "dead-homed verdict {i} carries the wrong fault: {message}"
                    );
                }
                other => panic!("dead-homed verdict {i} should be a typed Remote fault, got {other:?}"),
            }
        } else {
            assert_eq!(
                remote, local,
                "live-homed verdict {i} diverged after backend loss"
            );
        }
    }
    assert!(dead_homed > 0, "no dispute exercised the dead backend");
    router.shutdown().unwrap();
}

/// Replicated warm start: when every backend boots the same manifest,
/// losing one backend loses nothing — the router retries the shard on a
/// ring sibling and the full docket stays bit-identical.
#[test]
fn replicated_warm_start_lets_siblings_absorb_a_dead_backend() {
    let (test, outcome) = embedded(75);
    let models = 4;
    let dir = std::env::temp_dir().join(format!("wdte-fleet-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    persist::save(dir.join("m.model.wdte"), &outcome.model, persist::Format::Binary).unwrap();
    let manifest = ModelManifest {
        models: (0..models)
            .map(|i| ManifestEntry {
                model_id: format!("fleet-m{i}"),
                file: "m.model.wdte".into(),
            })
            .collect(),
    };
    manifest.save_dir(&dir).unwrap();

    let docket = mixed_docket(&test, &outcome, models, 24);
    let reference_service = DisputeService::builder().warm_start_dir(&dir).build().unwrap();
    let reference = reference_service.resolve_many(&docket);

    let mut backends: Vec<RunningServer> = (0..2)
        .map(|_| {
            let service = DisputeService::builder().warm_start_dir(&dir).build().unwrap();
            start_backend(Arc::new(service), None)
        })
        .collect();
    let router = start_router(&backends.iter().collect::<Vec<_>>(), None);
    let mut client = DisputeClient::connect(router.addr().to_string()).unwrap();
    backends.remove(0).shutdown().unwrap();

    // Every shard homed on the dead backend must fail over to its
    // replicated sibling with full bit-identity. The one exception is
    // the ghost id when its home is the corpse: the surviving sibling
    // answers UnknownModel, which the router refuses to present as
    // nonexistence while the authoritative home is down.
    let ghost_home = HashRing::new(2, RouterConfig::default().ring_replicas)
        .unwrap()
        .home(&TenantId::anonymous(), "fleet-ghost");
    let served = client.resolve_docket(&docket).unwrap();
    for (i, (remote, local)) in served.iter().zip(&reference).enumerate() {
        if docket[i].model_id == "fleet-ghost" && ghost_home == 0 {
            assert!(
                matches!(remote, Err(WatermarkError::Remote { message }) if message.contains("unreachable")),
                "dead-homed ghost verdict {i} should be an unreachable fault, got {remote:?}"
            );
        } else {
            assert_eq!(remote, local, "sibling retry changed verdict {i}");
        }
    }
    router.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A backend whose claim cache cannot retain bodies answers later
/// by-digest dockets with `NeedPayload`; the router must relay the
/// demand to the claimant, whose transparent resend then succeeds.
#[test]
fn need_payload_is_relayed_through_the_router() {
    let (test, outcome) = embedded(76);
    let docket = mixed_docket(&test, &outcome, 2, 12);
    let backends: Vec<RunningServer> = (0..2)
        .map(|_| {
            // 1-byte claim budget: every body is evicted on arrival.
            let service = DisputeService::builder().claim_cache_bytes(1).build().unwrap();
            start_backend(Arc::new(service), None)
        })
        .collect();
    let router = start_router(&backends.iter().collect::<Vec<_>>(), None);
    let mut client = DisputeClient::connect(router.addr().to_string()).unwrap();
    for i in 0..2 {
        client.register_model(format!("fleet-m{i}"), &outcome.model).unwrap();
    }
    let first = client.resolve_docket(&docket).unwrap();
    // The second round trips over by-digest refs, hits the evicted
    // cache, and must converge through the relayed NeedPayload.
    let second = client.resolve_docket(&docket).unwrap();
    assert_eq!(first, second, "NeedPayload relay changed verdicts");
    router.shutdown().unwrap();
}

/// Fleet-wide requests: `Ping` sums registries, `Stats` merges tenant
/// rows, `Deregister` removes a model wherever it lives.
#[test]
fn fleet_wide_requests_aggregate_across_backends() {
    let (test, outcome) = embedded(77);
    let _ = test;
    let (_backends, router) = fresh_fleet(2);
    let mut client = DisputeClient::connect(router.addr().to_string()).unwrap();
    for i in 0..5 {
        client.register_model(format!("fleet-m{i}"), &outcome.model).unwrap();
    }
    let pong = client.ping().unwrap();
    assert_eq!(
        pong.models_registered, 5,
        "fleet ping must sum backend registries"
    );

    let docket = mixed_docket(&test, &outcome, 5, 10);
    client.resolve_docket(&docket).unwrap();
    let stats = client.stats().unwrap();
    let models: u64 = stats.iter().map(|row| row.models).sum();
    let dockets: u64 = stats.iter().map(|row| row.dockets).sum();
    assert_eq!(models, 5, "fleet stats must merge per-backend model counts");
    assert!(dockets >= 1, "fleet stats lost the docket count");

    for i in 0..5 {
        assert!(
            client.deregister(format!("fleet-m{i}")).unwrap(),
            "fleet-m{i} existed"
        );
        assert!(
            !client.deregister(format!("fleet-m{i}")).unwrap(),
            "fleet-m{i} double-freed"
        );
    }
    assert!(client.list_models().unwrap().is_empty());
    router.shutdown().unwrap();
}

/// A router without backends is a configuration error, refused at bind.
#[test]
fn router_refuses_an_empty_backend_list() {
    assert!(JudgeRouter::bind("127.0.0.1:0", RouterConfig::default()).is_err());
}
