//! Keeps `docs/OPERATIONS.md` honest: the flag set documented for each
//! binary is diffed against the flags its argument parser actually
//! accepts, in both directions. Adding a flag without documenting it —
//! or documenting a flag that no longer exists — fails this test.
//!
//! No regex: flags are collected by scanning for `--name` tokens, which
//! appear in the parsers as quoted match arms and in the book as table
//! rows and usage blocks. `--help`/`-h` are parser-only conveniences
//! and exempt.

use std::collections::BTreeSet;

const OPERATIONS: &str = include_str!("../../../docs/OPERATIONS.md");
const SERVE_JUDGE: &str = include_str!("../src/bin/serve_judge.rs");
const JUDGE_SMOKE: &str = include_str!("../src/bin/judge_smoke.rs");
const FLEET_SMOKE: &str = include_str!("../src/bin/fleet_smoke.rs");

/// Every `--flag` token in `text`: a `--` immediately followed by an
/// ASCII lowercase letter, preceded by neither an alphanumeric nor
/// another `-`, extending over `[a-z0-9-]`. Tokens ending in `-` (the
/// `--quota-*` glob in prose) and table rules never qualify.
fn flags(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut found = BTreeSet::new();
    let mut i = 0;
    while i + 2 < bytes.len() {
        let boundary = i == 0 || (!bytes[i - 1].is_ascii_alphanumeric() && bytes[i - 1] != b'-');
        if boundary && bytes[i] == b'-' && bytes[i + 1] == b'-' && bytes[i + 2].is_ascii_lowercase() {
            let mut end = i + 2;
            while end < bytes.len()
                && (bytes[end].is_ascii_lowercase() || bytes[end].is_ascii_digit() || bytes[end] == b'-')
            {
                end += 1;
            }
            let name = &text[i..end];
            if !name.ends_with('-') && name != "--help" {
                found.insert(name.to_string());
            }
            i = end;
        } else {
            i += 1;
        }
    }
    found
}

/// The body of the `## <binary>` section of OPERATIONS.md, up to the
/// next `## ` heading.
fn doc_section(binary: &str) -> &'static str {
    let heading = format!("\n## {binary}\n");
    let start = OPERATIONS
        .find(&heading)
        .unwrap_or_else(|| panic!("docs/OPERATIONS.md has no `## {binary}` section"))
        + heading.len();
    let rest = &OPERATIONS[start..];
    match rest.find("\n## ") {
        Some(end) => &rest[..end],
        None => rest,
    }
}

fn assert_flags_match(binary: &str, source: &str) {
    let documented = flags(doc_section(binary));
    let parsed = flags(source);
    let undocumented: Vec<&String> = parsed.difference(&documented).collect();
    let phantom: Vec<&String> = documented.difference(&parsed).collect();
    assert!(
        undocumented.is_empty() && phantom.is_empty(),
        "docs/OPERATIONS.md drifted from `{binary}`:\n  \
         accepted but undocumented: {undocumented:?}\n  \
         documented but not accepted: {phantom:?}"
    );
}

#[test]
fn operations_book_documents_exactly_the_serve_judge_flags() {
    assert_flags_match("serve_judge", SERVE_JUDGE);
}

#[test]
fn operations_book_documents_exactly_the_judge_smoke_flags() {
    assert_flags_match("judge_smoke", JUDGE_SMOKE);
}

#[test]
fn operations_book_documents_exactly_the_fleet_smoke_flags() {
    assert_flags_match("fleet_smoke", FLEET_SMOKE);
}

/// The scanner itself: accepts real flags, rejects table rules,
/// em-dash prose and `--help`.
#[test]
fn flag_scanner_extracts_only_plausible_flags() {
    let sample = "|---|---|\nuse `--max-docket N` or `--workers 0` --- not `--help`, x--y, `--quota-*`";
    let got = flags(sample);
    let want: BTreeSet<String> = ["--max-docket", "--workers"].iter().map(|s| s.to_string()).collect();
    assert_eq!(got, want);
}
