//! `serve_judge` — the judge as a standalone process.
//!
//! Binds a TCP socket, optionally warm-starts the model registry from a
//! directory of persisted artefacts (`results/models/` as written by the
//! `table2` experiment), and serves the WDTP dispute-resolution protocol
//! until killed.
//!
//! ```text
//! serve_judge [--addr 127.0.0.1:7431] [--warm-start DIR]...
//!             [--port-file PATH] [--max-docket N] [--shard-rows N]
//!             [--workers N] [--max-connections N] [--max-pipeline N]
//!             [--claim-cache-mb N] [--model-cache-mb N] [--kernel NAME]
//!             [--key-file PATH] [--quota-models N] [--quota-docket N]
//!             [--quota-claim-mb N] [--quota-in-flight N]
//!             [--stats-interval-secs N]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; `--port-file` writes the
//! actually-bound address to a file once listening, so scripts (the CI
//! smoke job) can discover it race-free.
//!
//! The judge speaks WDTP v4: every connection may pipeline requests (up
//! to `--max-pipeline` in flight each; `0` = unbounded) and claims are
//! content-addressed — bodies travel once and later dockets reference
//! them by digest against a bounded claim cache (`--claim-cache-mb`, `0`
//! = unbounded). One readiness-driven thread owns every socket, so
//! `--max-connections` (`0` = unlimited) bounds descriptors, not threads.
//!
//! `--key-file PATH` turns on multi-tenant authentication: one
//! `tenant:secret` line per tenant (`#` comments and blank lines are
//! skipped), and every frame must then carry a valid HMAC-SHA-256 tag and
//! a strictly increasing per-connection sequence. Each tenant sees only
//! its own models, claims and stats. Without the flag the judge is open:
//! auth fields are ignored and everything runs as the anonymous tenant.
//!
//! `--model-cache-mb N` bounds the bytes of resident compiled forests;
//! over budget, the least-recently-used file-backed model is evicted and
//! transparently recompiled from its artefact on next use (warm-started
//! models are pinned). The `--quota-*` flags cap each tenant's models,
//! docket size, attributed claim-cache bytes and in-flight requests
//! (`0` = unlimited); `--stats-interval-secs` logs one per-tenant
//! accounting line at that cadence (`0` = never).
//!
//! `--workers N` sizes the one process-global work-stealing pool every
//! connection shares (`0` = one worker per core) and is also installed as
//! each request's fan-out width limit. The limit bounds how finely one
//! request *splits*, not how many workers it may occupy — a large docket
//! can still keep the whole pool busy while it runs; fairness between
//! connections comes from work stealing's fine task granularity, and
//! admission control from `--max-connections` / `--max-docket`.
//!
//! `--kernel NAME` selects the batch-inference kernel every resolution
//! runs (`scalar`, `blocked`, `quantized`, or the default `auto`, which
//! microprobes candidates on each model's first batch). Kernel choice
//! never changes verdicts — only throughput.
//!
//! ## Router mode
//!
//! `--router --backends HOST:PORT,HOST:PORT,...` serves the *fleet
//! router* instead of a judge: requests are consistent-hashed by
//! `(tenant, model id)` across the listed backend judges, dockets are
//! split into per-backend shards and stitched back in input order, and
//! a dead backend degrades to bounded sibling retry
//! (`--retry-siblings`) or typed faults. `--spawn-backends N` launches
//! N child `serve_judge` processes on ephemeral ports (inheriting
//! `--warm-start`, `--kernel`, `--key-file`, cache and quota flags, so
//! every backend replicates the same warm start) and routes across
//! them; the children are killed when the router exits cleanly.
//! `--ring-replicas` sets the virtual points per backend and
//! `--health-interval-secs` the cadence of the TCP health probe. The
//! same `--key-file` both verifies client frames at the router and
//! signs the router's requests towards the backends.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use wdte_core::{DisputeService, Kernel, KeyRing, TenantQuotas};
use wdte_server::{JudgeRouter, JudgeServer, RouterConfig, ServerConfig};

struct Args {
    addr: String,
    warm_start: Vec<String>,
    port_file: Option<String>,
    max_docket: Option<usize>,
    shard_rows: Option<usize>,
    workers: usize,
    max_connections: usize,
    max_pipeline: Option<usize>,
    claim_cache_mb: Option<usize>,
    model_cache_mb: Option<usize>,
    read_timeout_secs: Option<u64>,
    kernel: Kernel,
    key_file: Option<String>,
    quotas: TenantQuotas,
    stats_interval_secs: u64,
    router: bool,
    backends: Vec<String>,
    spawn_backends: usize,
    ring_replicas: usize,
    retry_siblings: usize,
    health_interval_secs: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7431".to_string(),
        warm_start: Vec::new(),
        port_file: None,
        max_docket: None,
        shard_rows: None,
        workers: 0,
        max_connections: 64,
        max_pipeline: None,
        claim_cache_mb: None,
        model_cache_mb: None,
        read_timeout_secs: None,
        kernel: Kernel::default(),
        key_file: None,
        quotas: TenantQuotas::default(),
        stats_interval_secs: 60,
        router: false,
        backends: Vec::new(),
        spawn_backends: 0,
        ring_replicas: 64,
        retry_siblings: 1,
        health_interval_secs: 1,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--warm-start" => args.warm_start.push(value("--warm-start")?),
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--max-docket" => {
                args.max_docket =
                    Some(value("--max-docket")?.parse().map_err(|e| format!("--max-docket: {e}"))?)
            }
            "--shard-rows" => {
                args.shard_rows =
                    Some(value("--shard-rows")?.parse().map_err(|e| format!("--shard-rows: {e}"))?)
            }
            "--workers" => {
                args.workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--max-pipeline" => {
                args.max_pipeline =
                    Some(value("--max-pipeline")?.parse().map_err(|e| format!("--max-pipeline: {e}"))?)
            }
            "--claim-cache-mb" => {
                args.claim_cache_mb = Some(
                    value("--claim-cache-mb")?
                        .parse()
                        .map_err(|e| format!("--claim-cache-mb: {e}"))?,
                )
            }
            "--model-cache-mb" => {
                args.model_cache_mb = Some(
                    value("--model-cache-mb")?
                        .parse()
                        .map_err(|e| format!("--model-cache-mb: {e}"))?,
                )
            }
            "--read-timeout-secs" => {
                args.read_timeout_secs = Some(
                    value("--read-timeout-secs")?
                        .parse()
                        .map_err(|e| format!("--read-timeout-secs: {e}"))?,
                )
            }
            "--key-file" => args.key_file = Some(value("--key-file")?),
            "--quota-models" => {
                args.quotas.max_models =
                    value("--quota-models")?.parse().map_err(|e| format!("--quota-models: {e}"))?
            }
            "--quota-docket" => {
                args.quotas.max_docket =
                    value("--quota-docket")?.parse().map_err(|e| format!("--quota-docket: {e}"))?
            }
            "--quota-claim-mb" => {
                let mb: usize = value("--quota-claim-mb")?
                    .parse()
                    .map_err(|e| format!("--quota-claim-mb: {e}"))?;
                args.quotas.max_claim_bytes = mb << 20;
            }
            "--quota-in-flight" => {
                args.quotas.max_in_flight = value("--quota-in-flight")?
                    .parse()
                    .map_err(|e| format!("--quota-in-flight: {e}"))?
            }
            "--stats-interval-secs" => {
                args.stats_interval_secs = value("--stats-interval-secs")?
                    .parse()
                    .map_err(|e| format!("--stats-interval-secs: {e}"))?
            }
            "--kernel" => {
                args.kernel = value("--kernel")?.parse().map_err(|e| format!("--kernel: {e}"))?
            }
            "--router" => args.router = true,
            "--backends" => args
                .backends
                .extend(value("--backends")?.split(',').map(|s| s.trim().to_string())),
            "--spawn-backends" => {
                args.spawn_backends = value("--spawn-backends")?
                    .parse()
                    .map_err(|e| format!("--spawn-backends: {e}"))?
            }
            "--ring-replicas" => {
                args.ring_replicas =
                    value("--ring-replicas")?.parse().map_err(|e| format!("--ring-replicas: {e}"))?
            }
            "--retry-siblings" => {
                args.retry_siblings = value("--retry-siblings")?
                    .parse()
                    .map_err(|e| format!("--retry-siblings: {e}"))?
            }
            "--health-interval-secs" => {
                args.health_interval_secs = value("--health-interval-secs")?
                    .parse()
                    .map_err(|e| format!("--health-interval-secs: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve_judge [--addr HOST:PORT] [--warm-start DIR]... \
                     [--port-file PATH] [--max-docket N] [--shard-rows N] \
                     [--workers N (shared pool size; 0 = one per core)] \
                     [--max-connections N (0 = unlimited)] \
                     [--max-pipeline N (in-flight requests per connection; 0 = unbounded)] \
                     [--claim-cache-mb N (content-addressed claim cache; 0 = unbounded)] \
                     [--model-cache-mb N (resident compiled forests; 0 = unbounded)] \
                     [--read-timeout-secs N (0 = never)] \
                     [--kernel scalar|blocked|quantized|auto] \
                     [--key-file PATH (tenant:secret lines; enables authentication)] \
                     [--quota-models N] [--quota-docket N] [--quota-claim-mb N] \
                     [--quota-in-flight N (all quotas per tenant; 0 = unlimited)] \
                     [--stats-interval-secs N (per-tenant accounting log; 0 = never)] \
                     [--router (serve the fleet router instead of a judge)] \
                     [--backends HOST:PORT,... (router backends, comma-separated)] \
                     [--spawn-backends N (launch N child judges on ephemeral ports)] \
                     [--ring-replicas N (virtual ring points per backend)] \
                     [--retry-siblings N (failover attempts beyond the home backend)] \
                     [--health-interval-secs N (backend TCP probe cadence)]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Launches `count` child `serve_judge` processes on ephemeral ports,
/// inheriting the service-shaping flags so every backend replicates the
/// same warm start, and returns their bound addresses (discovered via
/// per-child `--port-file`s).
fn spawn_backends(args: &Args, count: usize) -> Result<(Vec<std::process::Child>, Vec<String>), String> {
    let exe = std::env::current_exe().map_err(|err| format!("cannot locate own binary: {err}"))?;
    let mut children = Vec::with_capacity(count);
    let mut port_files = Vec::with_capacity(count);
    for index in 0..count {
        let port_file =
            std::env::temp_dir().join(format!("wdte-fleet-{}-{index}.port", std::process::id()));
        let _ = std::fs::remove_file(&port_file);
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--port-file")
            .arg(&port_file)
            .arg("--stats-interval-secs")
            .arg("0")
            .arg("--workers")
            .arg(args.workers.to_string())
            .arg("--kernel")
            .arg(args.kernel.to_string());
        for dir in &args.warm_start {
            cmd.arg("--warm-start").arg(dir);
        }
        if let Some(path) = &args.key_file {
            cmd.arg("--key-file").arg(path);
        }
        if let Some(max) = args.max_docket {
            cmd.arg("--max-docket").arg(max.to_string());
        }
        if let Some(rows) = args.shard_rows {
            cmd.arg("--shard-rows").arg(rows.to_string());
        }
        if let Some(mb) = args.claim_cache_mb {
            cmd.arg("--claim-cache-mb").arg(mb.to_string());
        }
        if let Some(mb) = args.model_cache_mb {
            cmd.arg("--model-cache-mb").arg(mb.to_string());
        }
        if args.quotas.max_models > 0 {
            cmd.arg("--quota-models").arg(args.quotas.max_models.to_string());
        }
        if args.quotas.max_docket > 0 {
            cmd.arg("--quota-docket").arg(args.quotas.max_docket.to_string());
        }
        if args.quotas.max_claim_bytes > 0 {
            cmd.arg("--quota-claim-mb").arg((args.quotas.max_claim_bytes >> 20).to_string());
        }
        if args.quotas.max_in_flight > 0 {
            cmd.arg("--quota-in-flight").arg(args.quotas.max_in_flight.to_string());
        }
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(err) => {
                for mut child in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(format!("could not spawn backend {index}: {err}"));
            }
        }
        port_files.push(port_file);
    }
    // Discover each child's bound address race-free: the child writes the
    // port file via write-then-rename only after it is listening.
    let mut backends = Vec::with_capacity(count);
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    for (index, port_file) in port_files.iter().enumerate() {
        loop {
            if let Ok(contents) = std::fs::read_to_string(port_file) {
                backends.push(contents.trim().to_string());
                let _ = std::fs::remove_file(port_file);
                break;
            }
            let died = children[index].try_wait().map(|status| status.is_some()).unwrap_or(true);
            if died || std::time::Instant::now() >= deadline {
                for mut child in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(format!("backend {index} never came up"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    Ok((children, backends))
}

/// Serves the fleet router: health-checked consistent-hash routing of
/// WDTP requests across the configured (or freshly spawned) backends.
fn run_router(args: Args, key_ring: Option<Arc<KeyRing>>) -> ExitCode {
    let mut backends = args.backends.clone();
    let mut children = Vec::new();
    if args.spawn_backends > 0 {
        match spawn_backends(&args, args.spawn_backends) {
            Ok((spawned, addrs)) => {
                children = spawned;
                backends.extend(addrs);
            }
            Err(message) => {
                eprintln!("serve_judge: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    if backends.is_empty() {
        eprintln!("serve_judge: --router needs --backends and/or --spawn-backends");
        return ExitCode::FAILURE;
    }
    let mut config = RouterConfig {
        backends: backends.clone(),
        ring_replicas: args.ring_replicas,
        retry_siblings: args.retry_siblings,
        health_interval: Duration::from_secs(args.health_interval_secs.max(1)),
        key_ring: key_ring.clone(),
        ..RouterConfig::default()
    };
    if let Some(secs) = args.read_timeout_secs {
        config.read_timeout = (secs > 0).then(|| Duration::from_secs(secs));
    }
    let router = match JudgeRouter::bind(args.addr.as_str(), config) {
        Ok(router) => router,
        Err(err) => {
            eprintln!("serve_judge: {err}");
            for mut child in children {
                let _ = child.kill();
                let _ = child.wait();
            }
            return ExitCode::FAILURE;
        }
    };
    let addr = router.local_addr();
    let auth = match &key_ring {
        Some(ring) => format!("authenticated, {} tenants", ring.len()),
        None => "open".to_string(),
    };
    println!(
        "serve_judge router listening on {addr} (backends [{}], protocol v{}, {auth})",
        backends.join(", "),
        wdte_core::PROTOCOL_VERSION,
    );
    if let Some(path) = &args.port_file {
        let tmp = format!("{path}.tmp");
        let write = std::fs::write(&tmp, addr.to_string()).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(err) = write {
            eprintln!("serve_judge: could not write --port-file {path}: {err}");
            return ExitCode::FAILURE;
        }
    }
    let result = router.serve();
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("serve_judge: {err}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("serve_judge: {message}");
            return ExitCode::FAILURE;
        }
    };

    // `--workers` sizes the one process-global work-stealing pool every
    // connection shares (0 = one worker per core). Sized before any
    // parallel work — warm-start compilation included — so the pool can
    // never lazily self-size first.
    if let Err(err) = rayon::ThreadPoolBuilder::new().num_threads(args.workers).build_global() {
        eprintln!("serve_judge: could not size the global worker pool: {err}");
        return ExitCode::FAILURE;
    }

    let key_ring = match &args.key_file {
        Some(path) => match KeyRing::load(std::path::Path::new(path)) {
            Ok(ring) if ring.is_empty() => {
                eprintln!("serve_judge: key file {path} enrolls no tenants");
                return ExitCode::FAILURE;
            }
            Ok(ring) => Some(Arc::new(ring)),
            Err(err) => {
                eprintln!("serve_judge: could not load --key-file {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    if args.router || args.spawn_backends > 0 {
        return run_router(args, key_ring);
    }

    let mut builder = DisputeService::builder().kernel(args.kernel).tenant_quotas(args.quotas);
    if let Some(rows) = args.shard_rows {
        builder = builder.batch_shard_rows(rows);
    }
    if let Some(mb) = args.claim_cache_mb {
        // 0 disables the budget (unbounded cache) by the same convention
        // as the other limits.
        builder = builder.claim_cache_bytes(mb << 20);
    }
    if let Some(mb) = args.model_cache_mb {
        builder = builder.model_cache_bytes(mb << 20);
    }
    if let Some(max) = args.max_docket {
        builder = builder.max_docket(max);
    }
    for dir in &args.warm_start {
        builder = builder.warm_start_dir(dir);
    }
    let service = match builder.build() {
        Ok(service) => Arc::new(service),
        Err(err) => {
            eprintln!("serve_judge: could not build the dispute service: {err}");
            return ExitCode::FAILURE;
        }
    };
    let warm = service.len();

    let mut config = ServerConfig {
        max_connections: args.max_connections,
        worker_threads: args.workers,
        key_ring: key_ring.clone(),
        ..ServerConfig::default()
    };
    if let Some(depth) = args.max_pipeline {
        config.max_pipeline = depth;
    }
    if let Some(secs) = args.read_timeout_secs {
        // 0 disables idle reaping entirely (trusted networks only).
        config.read_timeout = (secs > 0).then(|| std::time::Duration::from_secs(secs));
    }
    let server = match JudgeServer::bind(args.addr.as_str(), Arc::clone(&service), config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("serve_judge: {err}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    let auth = match &key_ring {
        Some(ring) => format!("authenticated, {} tenants", ring.len()),
        None => "open".to_string(),
    };
    println!(
        "serve_judge listening on {addr} (protocol v{}, {warm} models warm-started, \
         {} shared pool workers, {} kernel, {auth})",
        wdte_core::PROTOCOL_VERSION,
        rayon::current_num_threads(),
        service.kernel()
    );
    if args.stats_interval_secs > 0 {
        // Periodic per-tenant accounting line. The thread holds its own
        // Arc and dies with the process; a judge with no traffic yet
        // prints nothing rather than an empty line.
        let stats_service = Arc::clone(&service);
        let interval = std::time::Duration::from_secs(args.stats_interval_secs);
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            let rows = stats_service.stats_all();
            if rows.is_empty() {
                continue;
            }
            let summary: Vec<String> = rows
                .iter()
                .map(|row| {
                    format!(
                        "{}: models={} dockets={} claims={} hits={} misses={} evictions={} \
                         auth_failures={} claim_bytes={} in_flight={}",
                        row.tenant,
                        row.models,
                        row.dockets,
                        row.claims,
                        row.cache_hits,
                        row.cache_misses,
                        row.evictions,
                        row.auth_failures,
                        row.claim_bytes,
                        row.in_flight
                    )
                })
                .collect();
            println!("serve_judge stats [{}]", summary.join(" | "));
        });
    }
    if let Some(path) = &args.port_file {
        // Write-then-rename so a watcher never reads a half-written file.
        let tmp = format!("{path}.tmp");
        let write = std::fs::write(&tmp, addr.to_string()).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(err) = write {
            eprintln!("serve_judge: could not write --port-file {path}: {err}");
            return ExitCode::FAILURE;
        }
    }
    match server.serve() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("serve_judge: {err}");
            ExitCode::FAILURE
        }
    }
}
