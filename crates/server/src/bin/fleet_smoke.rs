//! `fleet_smoke` — end-to-end smoke check against a running judge fleet
//! (`serve_judge --router` + backend judges as real processes).
//!
//! Normal phase: registers eight models through the router, verifies
//! each landed exactly on its consistent-hash home backend (by asking
//! every backend directly), resolves a mixed genuine/forged docket that
//! cycles all eight models plus one unknown id, and fails unless every
//! served verdict is *bit-identical* to in-process
//! `DisputeService::resolve_many` on the same docket — the fleet must
//! never change a verdict. Three pipelined dockets redeemed out of
//! order, a fleet-wide ping and a stats sweep round out the check.
//! Models are deliberately left registered so a degraded run can follow.
//!
//! Degraded phase (`--degraded DEAD_ADDR`, run after killing the backend
//! listening on `DEAD_ADDR`): the same docket must now yield
//! bit-identical verdicts for every dispute homed on a surviving
//! backend, and a *typed* fault — never a hang — for every dispute homed
//! on the dead one.
//!
//! ```text
//! fleet_smoke --addr ROUTER --backend HOST:PORT [--backend HOST:PORT]...
//!             [--claims N] [--kernel NAME] [--key-file PATH --tenant NAME]
//!             [--degraded DEAD_ADDR]
//! ```
//!
//! `--backend` flags must list the backends in the router's `--backends`
//! order — ring placement is positional, and the placement check
//! recomputes it with the same [`HashRing`].

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::process::ExitCode;
use wdte_core::{
    Dispute, DisputeService, HashRing, Kernel, KeyRing, OwnershipClaim, Signature, TenantId,
    WatermarkConfig, WatermarkError, Watermarker,
};
use wdte_data::SyntheticSpec;
use wdte_server::{ClientAuth, DisputeClient};

/// Distinct model ids spread across the ring. Eight ids across two or
/// three backends makes both a multi-backend docket split and at least
/// one dead-homed id overwhelmingly likely (and the run asserts both).
const MODELS: usize = 8;

fn model_id(index: usize) -> String {
    format!("fleet-m{index}")
}

/// The deterministic fixture: one watermarked model (registered under
/// every fleet id), plus the mixed docket. Same seed every run and both
/// phases, so the degraded phase replays the exact docket of the normal
/// phase.
struct Fixture {
    model: wdte_trees::RandomForest,
    docket: Vec<Dispute>,
}

fn build_fixture(claims: usize) -> Result<Fixture, String> {
    let mut rng = SmallRng::seed_from_u64(0xF1EE7);
    let dataset = SyntheticSpec::breast_cancer_like().scaled(0.6).generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::from_identity("alice@fleetcorp.example", 16);
    let config = WatermarkConfig {
        num_trees: 16,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config)
        .embed(&train, &signature, &mut rng)
        .map_err(|err| format!("embedding failed: {err}"))?;
    let genuine = OwnershipClaim::new(
        outcome.signature.clone(),
        outcome.trigger_set.clone(),
        test.clone(),
    );
    let forged = OwnershipClaim::new(
        Signature::from_identity("mallory@pirate.example", 16),
        test.select(&(0..outcome.trigger_set.len()).collect::<Vec<_>>())
            .map_err(|err| format!("forged trigger selection failed: {err}"))?,
        test.clone(),
    );
    let docket: Vec<Dispute> = (0..claims)
        .map(|i| {
            let claim = if i % 2 == 0 {
                genuine.clone()
            } else {
                forged.clone()
            };
            // One dispute names an unknown model, so typed-error
            // transport is exercised through the split/stitch path too.
            let id = if i == claims / 2 {
                "fleet-ghost".to_string()
            } else {
                model_id(i % MODELS)
            };
            Dispute::new(id, claim)
        })
        .collect();
    Ok(Fixture {
        model: outcome.model,
        docket,
    })
}

/// The in-process reference verdicts for the fixture docket.
fn reference_verdicts(
    fixture: &Fixture,
    kernel: Kernel,
) -> Result<Vec<wdte_core::error::WatermarkResult<wdte_core::VerificationReport>>, String> {
    let service = DisputeService::builder()
        .kernel(kernel)
        .build()
        .map_err(|err| err.to_string())?;
    for index in 0..MODELS {
        service.register(model_id(index), &fixture.model);
    }
    Ok(service.resolve_many(&fixture.docket))
}

fn connect(addr: &str, auth: &Option<ClientAuth>) -> Result<DisputeClient, String> {
    match auth {
        Some(auth) => DisputeClient::connect_authenticated(addr, auth.clone()),
        None => DisputeClient::connect(addr),
    }
    .map_err(|err| format!("could not reach {addr}: {err}"))
}

/// Ring home (backend index) of every fleet model id, under the same
/// hash the router uses.
fn homes(backends: usize, tenant: &TenantId) -> Result<Vec<usize>, String> {
    let ring = HashRing::new(backends, 64).map_err(|err| err.to_string())?;
    Ok((0..MODELS).map(|index| ring.home(tenant, &model_id(index))).collect())
}

/// Normal phase: register, check placement, resolve, compare.
fn run_normal(
    addr: &str,
    backends: &[String],
    claims: usize,
    kernel: Kernel,
    auth: &Option<ClientAuth>,
) -> Result<(), String> {
    let fixture = build_fixture(claims)?;
    let reference = reference_verdicts(&fixture, kernel)?;
    let tenant = auth.as_ref().map_or_else(TenantId::anonymous, |a| a.tenant().clone());
    let homes = homes(backends.len(), &tenant)?;

    let mut client = connect(addr, auth)?;
    let pong = client.ping().map_err(|err| format!("fleet ping failed: {err}"))?;
    println!(
        "router at {addr}: protocol v{}, format v{}, {} models across the fleet",
        pong.protocol_version, pong.format_version, pong.models_registered
    );
    for index in 0..MODELS {
        let trees = client
            .register_model(model_id(index), &fixture.model)
            .map_err(|err| format!("registering {} failed: {err}", model_id(index)))?;
        if trees != fixture.model.num_trees() {
            return Err(format!(
                "router registered {trees} trees for {}, expected {}",
                model_id(index),
                fixture.model.num_trees()
            ));
        }
    }
    // The router's ListModels is the fleet union and must show all ids.
    let listed = client.list_models().map_err(|err| format!("list_models failed: {err}"))?;
    for index in 0..MODELS {
        if !listed.contains(&model_id(index)) {
            return Err(format!("{} missing from the fleet listing", model_id(index)));
        }
    }
    // Placement check: each model must live on exactly its ring home —
    // asked of every backend *directly*, bypassing the router.
    for (backend, backend_addr) in backends.iter().enumerate() {
        let mut direct = connect(backend_addr, auth)?;
        let here = direct.list_models().map_err(|err| {
            format!("direct list_models on backend {backend} ({backend_addr}) failed: {err}")
        })?;
        for (index, home) in homes.iter().enumerate().take(MODELS) {
            let expect_here = *home == backend;
            let is_here = here.contains(&model_id(index));
            if expect_here != is_here {
                return Err(format!(
                    "{} on backend {backend} ({backend_addr}): expected {expect_here}, found {is_here} \
                     — consistent-hash placement diverged",
                    model_id(index)
                ));
            }
        }
    }
    let spread: std::collections::HashSet<usize> = homes.iter().copied().collect();
    if spread.len() < 2 {
        return Err(format!(
            "all {MODELS} models landed on backend {:?}; the docket would not split",
            spread
        ));
    }
    println!(
        "placement verified: {MODELS} models spread over {} of {} backends, homes {homes:?}",
        spread.len(),
        backends.len()
    );

    // The docket, resolved through the split/stitch path.
    let served = client
        .resolve_docket(&fixture.docket)
        .map_err(|err| format!("fleet docket resolution failed: {err}"))?;
    if served.len() != reference.len() {
        return Err(format!(
            "fleet docket has {} verdicts, expected {}",
            served.len(),
            reference.len()
        ));
    }
    let mut upheld = 0usize;
    for (i, (remote, local)) in served.iter().zip(&reference).enumerate() {
        if remote != local {
            return Err(format!(
                "verdict {i} differs between fleet and in-process:\n  fleet: {remote:?}\n  local: {local:?}"
            ));
        }
        if remote.as_ref().is_ok_and(|report| report.verified) {
            upheld += 1;
        }
    }
    if upheld == 0 || upheld >= claims {
        return Err(format!(
            "implausible verdict split ({upheld}/{claims} upheld): the fixture must mix genuine and forged claims"
        ));
    }
    println!(
        "resolved {} disputes across the fleet: {upheld} upheld, all bit-identical to in-process resolution",
        served.len()
    );

    // Pipelined dockets redeemed out of order must survive the fan-out.
    let tickets = [
        client
            .send_docket(&fixture.docket)
            .map_err(|err| format!("pipelined send failed: {err}"))?,
        client
            .send_docket(&fixture.docket)
            .map_err(|err| format!("pipelined send failed: {err}"))?,
        client
            .send_docket(&fixture.docket)
            .map_err(|err| format!("pipelined send failed: {err}"))?,
    ];
    for (i, ticket) in tickets.into_iter().rev().enumerate() {
        let pipelined = client
            .recv_docket(ticket)
            .map_err(|err| format!("pipelined recv failed: {err}"))?;
        if pipelined != served {
            return Err(format!(
                "pipelined docket {i} differs from the sequential verdicts"
            ));
        }
    }
    println!("pipelined 3 dockets out of order, bit-identical again");

    // Fleet accounting: the merged stats must show this traffic.
    let stats = client.stats().map_err(|err| format!("stats failed: {err}"))?;
    let dockets: u64 = stats.iter().map(|row| row.dockets).sum();
    if dockets < 4 {
        return Err(format!(
            "fleet stats report {dockets} dockets across {} tenants after four resolutions",
            stats.len()
        ));
    }
    // Models stay registered: the degraded phase reuses them.
    Ok(())
}

/// Degraded phase: one backend is gone; live shards stay bit-identical,
/// dead shards fail typed.
fn run_degraded(
    addr: &str,
    backends: &[String],
    dead_addr: &str,
    claims: usize,
    kernel: Kernel,
    auth: &Option<ClientAuth>,
) -> Result<(), String> {
    let dead = backends
        .iter()
        .position(|backend| backend == dead_addr)
        .ok_or_else(|| format!("--degraded {dead_addr} does not match any --backend"))?;
    let fixture = build_fixture(claims)?;
    let reference = reference_verdicts(&fixture, kernel)?;
    let tenant = auth.as_ref().map_or_else(TenantId::anonymous, |a| a.tenant().clone());
    let homes = homes(backends.len(), &tenant)?;

    let mut client = connect(addr, auth)?;
    let served = client
        .resolve_docket(&fixture.docket)
        .map_err(|err| format!("degraded docket resolution failed: {err}"))?;
    if served.len() != reference.len() {
        return Err(format!(
            "degraded docket has {} verdicts, expected {}",
            served.len(),
            reference.len()
        ));
    }
    let mut dead_homed = 0usize;
    let mut live_identical = 0usize;
    for (i, (remote, local)) in served.iter().zip(&reference).enumerate() {
        let dispute = &fixture.docket[i];
        // The ghost id was never registered anywhere; its verdict is a
        // typed error in both topologies (UnknownModel from a live home,
        // unreachable from a dead one), so only Err-ness is asserted.
        let on_dead = dispute.model_id != "fleet-ghost"
            && homes
                .get(
                    dispute
                        .model_id
                        .strip_prefix("fleet-m")
                        .and_then(|n| n.parse::<usize>().ok())
                        .ok_or_else(|| format!("unparseable fixture id {}", dispute.model_id))?,
                )
                .copied()
                == Some(dead);
        if on_dead || dispute.model_id == "fleet-ghost" {
            match remote {
                Ok(report) => {
                    return Err(format!(
                        "dispute {i} ({}) should have failed typed, got a report: {report:?}",
                        dispute.model_id
                    ));
                }
                Err(WatermarkError::ProtocolViolation { detail }) => {
                    return Err(format!(
                        "dispute {i} ({}) died with a protocol violation, not a typed fault: {detail}",
                        dispute.model_id
                    ));
                }
                Err(_) => {
                    if on_dead {
                        dead_homed += 1;
                    }
                }
            }
        } else {
            if remote != local {
                return Err(format!(
                    "live-homed verdict {i} ({}) differs from in-process:\n  fleet: {remote:?}\n  local: {local:?}",
                    dispute.model_id
                ));
            }
            live_identical += 1;
        }
    }
    if dead_homed == 0 {
        return Err(format!(
            "no dispute was homed on dead backend {dead} ({dead_addr}); the degradation path went untested"
        ));
    }
    if live_identical == 0 {
        return Err(
            "every dispute was homed on the dead backend; the survival path went untested".to_string(),
        );
    }
    println!(
        "degraded fleet: {live_identical} live-homed verdicts bit-identical, \
         {dead_homed} dead-homed disputes failed with typed faults"
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut addr = None;
    let mut backends: Vec<String> = Vec::new();
    let mut claims = 64usize;
    let mut kernel = Kernel::default();
    let mut key_file: Option<String> = None;
    let mut tenant: Option<String> = None;
    let mut degraded: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--addr" => addr = argv.next(),
            "--backend" => match argv.next() {
                Some(backend) => backends.push(backend),
                None => {
                    eprintln!("fleet_smoke: --backend needs an address");
                    return ExitCode::FAILURE;
                }
            },
            "--claims" => match argv.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 2 * MODELS => claims = n,
                _ => {
                    eprintln!("fleet_smoke: --claims needs an integer >= {}", 2 * MODELS);
                    return ExitCode::FAILURE;
                }
            },
            "--kernel" => match argv.next().map(|v| v.parse::<Kernel>()) {
                Some(Ok(k)) => kernel = k,
                _ => {
                    eprintln!("fleet_smoke: --kernel needs one of scalar, blocked, quantized, auto");
                    return ExitCode::FAILURE;
                }
            },
            "--key-file" => key_file = argv.next(),
            "--tenant" => tenant = argv.next(),
            "--degraded" => degraded = argv.next(),
            other => {
                eprintln!(
                    "fleet_smoke: unknown flag `{other}` \
                     (usage: --addr ROUTER --backend HOST:PORT... [--claims N] [--kernel NAME] \
                     [--key-file PATH --tenant NAME] [--degraded DEAD_ADDR])"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("fleet_smoke: --addr ROUTER_HOST:PORT is required");
        return ExitCode::FAILURE;
    };
    if backends.len() < 2 {
        eprintln!("fleet_smoke: at least two --backend addresses are required");
        return ExitCode::FAILURE;
    }
    let auth = match (key_file, tenant) {
        (None, None) => None,
        (Some(path), Some(name)) => {
            let ring = match KeyRing::load(std::path::Path::new(&path)) {
                Ok(ring) => ring,
                Err(err) => {
                    eprintln!("fleet_smoke: could not load --key-file {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let tenant = match TenantId::new(name) {
                Ok(tenant) => tenant,
                Err(err) => {
                    eprintln!("fleet_smoke: --tenant: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(secret) = ring.key(&tenant) else {
                eprintln!("fleet_smoke: tenant `{tenant}` is not enrolled in {path}");
                return ExitCode::FAILURE;
            };
            Some(ClientAuth::new(tenant, secret.to_vec()))
        }
        _ => {
            eprintln!("fleet_smoke: --key-file and --tenant must be given together");
            return ExitCode::FAILURE;
        }
    };
    let result = match &degraded {
        None => run_normal(&addr, &backends, claims, kernel, &auth),
        Some(dead_addr) => run_degraded(&addr, &backends, dead_addr, claims, kernel, &auth),
    };
    match result {
        Ok(()) => {
            println!("fleet_smoke: PASS");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("fleet_smoke: FAIL: {message}");
            ExitCode::FAILURE
        }
    }
}
