//! `judge_smoke` — end-to-end smoke check against a running `serve_judge`.
//!
//! Builds a deterministic watermarked model and a docket of genuine and
//! forged claims, registers the model with the remote judge, resolves the
//! docket over the wire, and fails (nonzero exit) unless every served
//! verdict is *bit-identical* to the in-process
//! `DisputeService::resolve_many` on the same docket. This is the CI
//! gate for the network layer: the wire must never change a verdict.
//!
//! ```text
//! judge_smoke --addr HOST:PORT [--claims N] [--kernel NAME]
//!             [--key-file PATH --tenant NAME]
//! ```
//!
//! `--kernel NAME` selects the inference kernel for the *in-process
//! reference* service (`scalar`, `blocked`, `quantized` or `auto`). The
//! remote judge picks its own kernel via `serve_judge --kernel`, so
//! running the smoke with a different name on each side proves verdicts
//! are bit-identical *across* kernels, not just across the wire.
//!
//! `--key-file PATH --tenant NAME` authenticates every frame as `NAME`
//! using the secret on that tenant's line of the key file (the same file
//! handed to `serve_judge --key-file`). Every assertion is identical in
//! both modes — authentication must never change a verdict.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::process::ExitCode;
use wdte_core::{
    Dispute, DisputeService, Kernel, KeyRing, OwnershipClaim, Signature, TenantId, WatermarkConfig,
    Watermarker,
};
use wdte_data::SyntheticSpec;
use wdte_server::{ClientAuth, DisputeClient};

fn run(addr: &str, claims: usize, kernel: Kernel, auth: Option<ClientAuth>) -> Result<(), String> {
    // Deterministic fixture: the same model and docket every run.
    let mut rng = SmallRng::seed_from_u64(0x5A5A);
    let dataset = SyntheticSpec::breast_cancer_like().scaled(0.6).generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::from_identity("alice@modelcorp.example", 16);
    let config = WatermarkConfig {
        num_trees: 16,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config)
        .embed(&train, &signature, &mut rng)
        .map_err(|err| format!("embedding failed: {err}"))?;
    let genuine = OwnershipClaim::new(
        outcome.signature.clone(),
        outcome.trigger_set.clone(),
        test.clone(),
    );
    let forged = OwnershipClaim::new(
        Signature::from_identity("mallory@pirate.example", 16),
        test.select(&(0..outcome.trigger_set.len()).collect::<Vec<_>>())
            .map_err(|err| format!("forged trigger selection failed: {err}"))?,
        test.clone(),
    );
    let docket: Vec<Dispute> = (0..claims)
        .map(|i| {
            let claim = if i % 2 == 0 {
                genuine.clone()
            } else {
                forged.clone()
            };
            // One dispute per docket names an unknown model, so the smoke
            // test also covers typed-error transport.
            let model_id = if i == claims / 2 {
                "ghost-deployment"
            } else {
                "smoke-deployment"
            };
            Dispute::new(model_id, claim)
        })
        .collect();

    // The in-process reference verdicts, under the requested kernel.
    let reference_service = DisputeService::builder()
        .kernel(kernel)
        .build()
        .map_err(|err| err.to_string())?;
    reference_service.register("smoke-deployment", &outcome.model);
    let reference = reference_service.resolve_many(&docket);

    // The same docket, served over the wire.
    let mut client = match auth {
        Some(auth) => {
            println!("authenticating as tenant `{}`", auth.tenant());
            DisputeClient::connect_authenticated(addr, auth)
        }
        None => DisputeClient::connect(addr),
    }
    .map_err(|err| format!("could not reach the judge: {err}"))?;
    let pong = client.ping().map_err(|err| format!("ping failed: {err}"))?;
    println!(
        "judge at {addr}: protocol v{}, format v{}, {} models registered, {} claims cached",
        pong.protocol_version, pong.format_version, pong.models_registered, pong.claims_cached
    );
    let trees = client
        .register_model("smoke-deployment", &outcome.model)
        .map_err(|err| format!("registration failed: {err}"))?;
    if trees != outcome.model.num_trees() {
        return Err(format!(
            "judge registered {trees} trees, expected {}",
            outcome.model.num_trees()
        ));
    }
    if !client
        .list_models()
        .map_err(|err| format!("list_models failed: {err}"))?
        .contains(&"smoke-deployment".to_string())
    {
        return Err("registered model missing from the judge's listing".to_string());
    }
    let served = client
        .resolve_docket(&docket)
        .map_err(|err| format!("docket resolution failed: {err}"))?;

    if served.len() != reference.len() {
        return Err(format!(
            "served docket has {} verdicts, expected {}",
            served.len(),
            reference.len()
        ));
    }
    let mut upheld = 0usize;
    for (i, (remote, local)) in served.iter().zip(&reference).enumerate() {
        if remote != local {
            return Err(format!(
                "verdict {i} differs between wire and in-process:\n  wire:  {remote:?}\n  local: {local:?}"
            ));
        }
        if remote.as_ref().is_ok_and(|report| report.verified) {
            upheld += 1;
        }
    }
    println!(
        "resolved {} disputes over the wire: {} upheld, all bit-identical to in-process resolution",
        served.len(),
        upheld
    );
    if upheld == 0 || upheld >= claims {
        return Err(format!(
            "implausible verdict split ({upheld}/{claims} upheld): the fixture must mix genuine and forged claims"
        ));
    }

    // The pipelined path: three copies of the docket in flight at once,
    // redeemed out of order. Content addressing means the repeats travel
    // as digests, and every verdict vector must still match the serial one.
    let tickets = [
        client
            .send_docket(&docket)
            .map_err(|err| format!("pipelined send failed: {err}"))?,
        client
            .send_docket(&docket)
            .map_err(|err| format!("pipelined send failed: {err}"))?,
        client
            .send_docket(&docket)
            .map_err(|err| format!("pipelined send failed: {err}"))?,
    ];
    for (i, ticket) in tickets.into_iter().rev().enumerate() {
        let pipelined = client
            .recv_docket(ticket)
            .map_err(|err| format!("pipelined recv failed: {err}"))?;
        if pipelined != served {
            return Err(format!(
                "pipelined docket {i} differs from the sequential verdicts"
            ));
        }
    }
    let cached = client.ping().map_err(|err| format!("ping failed: {err}"))?.claims_cached;
    if cached == 0 {
        return Err("the judge cached no claim payloads after four dockets".to_string());
    }
    println!("pipelined 3 dockets out of order, bit-identical again ({cached} claims cached)");
    // Accounting must have seen this client's traffic: its own row (or,
    // anonymously, some row) has at least the four dockets just resolved.
    let stats = client.stats().map_err(|err| format!("stats failed: {err}"))?;
    let dockets: u64 = stats.iter().map(|row| row.dockets).sum();
    if dockets < 4 {
        return Err(format!(
            "stats report {dockets} dockets across {} tenants after four resolutions",
            stats.len()
        ));
    }
    // Leave the judge as we found it.
    client
        .deregister("smoke-deployment")
        .map_err(|err| format!("deregister failed: {err}"))?
        .then_some(())
        .ok_or("deregister reported the model as never registered")?;
    Ok(())
}

fn main() -> ExitCode {
    let mut addr = None;
    let mut claims = 64usize;
    let mut kernel = Kernel::default();
    let mut key_file: Option<String> = None;
    let mut tenant: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--addr" => addr = argv.next(),
            "--claims" => match argv.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 2 => claims = n,
                _ => {
                    eprintln!("judge_smoke: --claims needs an integer >= 2");
                    return ExitCode::FAILURE;
                }
            },
            "--kernel" => match argv.next().map(|v| v.parse::<Kernel>()) {
                Some(Ok(k)) => kernel = k,
                _ => {
                    eprintln!("judge_smoke: --kernel needs one of scalar, blocked, quantized, auto");
                    return ExitCode::FAILURE;
                }
            },
            "--key-file" => key_file = argv.next(),
            "--tenant" => tenant = argv.next(),
            other => {
                eprintln!(
                    "judge_smoke: unknown flag `{other}` \
                     (usage: --addr HOST:PORT [--claims N] [--kernel NAME] \
                     [--key-file PATH --tenant NAME])"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("judge_smoke: --addr HOST:PORT is required");
        return ExitCode::FAILURE;
    };
    let auth = match (key_file, tenant) {
        (None, None) => None,
        (Some(path), Some(name)) => {
            let ring = match KeyRing::load(std::path::Path::new(&path)) {
                Ok(ring) => ring,
                Err(err) => {
                    eprintln!("judge_smoke: could not load --key-file {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let tenant = match TenantId::new(name) {
                Ok(tenant) => tenant,
                Err(err) => {
                    eprintln!("judge_smoke: --tenant: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(secret) = ring.key(&tenant) else {
                eprintln!("judge_smoke: tenant `{tenant}` is not enrolled in {path}");
                return ExitCode::FAILURE;
            };
            Some(ClientAuth::new(tenant, secret.to_vec()))
        }
        _ => {
            eprintln!("judge_smoke: --key-file and --tenant must be given together");
            return ExitCode::FAILURE;
        }
    };
    match run(&addr, claims, kernel, auth) {
        Ok(()) => {
            println!("judge_smoke: PASS");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("judge_smoke: FAIL: {message}");
            ExitCode::FAILURE
        }
    }
}
