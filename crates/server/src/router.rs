//! The fleet front door: a router that consistent-hashes
//! `(tenant, model id)` keys across N backend judge processes and
//! forwards WDTP requests through per-backend [`DisputeClient`]s.
//!
//! The router terminates the protocol rather than shuffling raw bytes —
//! it has to, because splitting one docket across backends produces
//! frames the end client never signed. Pass-through is *semantic*:
//! client frames are verified against the same key ring the backends
//! use (identical per-connection sequence floors and replay rules),
//! requests are re-signed towards each backend with the tenant's own
//! secret, correlation ids are echoed back unchanged, and a backend's
//! `NeedPayload` demand for claim bodies the router never held is
//! relayed upstream so the end client's content-addressed retry logic
//! works exactly as against a single judge.
//!
//! Placement is the [`HashRing`] of `wdte_core::fleet`: deterministic,
//! process-independent, and minimally disruptive on backend loss. A
//! docket is split into per-backend shards with
//! [`fleet::split_indices`], the shards travel concurrently (all sends
//! before any receive), and verdicts are stitched back into input order
//! with [`fleet::scatter`]. On a fleet whose backends warm-started from
//! a shared manifest, every backend holds every model, so a dead
//! backend degrades to bounded retry-on-sibling with bit-identical
//! verdicts; models only the dead backend knew degrade to *typed*
//! faults for exactly their disputes — never a hung connection.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::io::{BufReader, ErrorKind, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wdte_core::error::{WatermarkError, WatermarkResult};
use wdte_core::fleet::{self, HashRing};
use wdte_core::proto::{
    self, DisputeRef, DocketVerdict, PayloadDigest, Request, Response, WireFault, NO_CORRELATION,
};
use wdte_core::{persist, KeyRing, OwnershipClaim, TenantId, TenantStatsEntry};

use crate::client::{ClientAuth, ClientConfig, DisputeClient, DocketOutcome};

/// Tuning knobs of a [`JudgeRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Addresses of the backend judge processes, in ring order. The ring
    /// is built over the *positions* of this list, so every router (and
    /// every router restart) given the same list computes identical
    /// placement. At least one backend is required.
    pub backends: Vec<String>,
    /// Virtual ring points per backend; more points spread keys more
    /// evenly at slightly higher lookup cost.
    pub ring_replicas: usize,
    /// How many sibling backends to try (beyond the home) before a
    /// request or docket shard is failed with a typed fault. `0`
    /// disables failover entirely.
    pub retry_siblings: usize,
    /// Interval of the background health monitor, which TCP-probes every
    /// backend and flips its healthy flag. The probe is connect-only —
    /// keyed backends refuse anonymous frames, so a protocol-level ping
    /// would demote healthy keyed fleets.
    pub health_interval: Duration,
    /// Receiver-side cap on one frame's payload, applied to both client
    /// frames and backend responses.
    pub max_frame_bytes: usize,
    /// Idle deadline on a client connection: a connection that sends no
    /// frame for this long is closed. `None` keeps idle clients forever.
    pub read_timeout: Option<Duration>,
    /// Per-frame write deadline towards clients and backends.
    pub write_timeout: Option<Duration>,
    /// Read deadline on backend responses. `None` (the default) waits as
    /// long as the backend needs — a large docket shard legitimately
    /// takes a while, and a *dead* backend fails the read immediately
    /// rather than timing out.
    pub backend_read_timeout: Option<Duration>,
    /// Per-attempt TCP connect deadline for backend connections and
    /// health probes.
    pub connect_timeout: Duration,
    /// Tenant keys for frame authentication, shared with the backends.
    /// `None` runs an open fleet (anonymous frames end to end); `Some`
    /// verifies every client frame here at the edge and re-signs each
    /// backend request with the same tenant secret.
    pub key_ring: Option<Arc<KeyRing>>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            backends: Vec::new(),
            ring_replicas: 64,
            retry_siblings: 1,
            health_interval: Duration::from_secs(1),
            max_frame_bytes: proto::DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(30)),
            backend_read_timeout: None,
            connect_timeout: Duration::from_secs(1),
            key_ring: None,
        }
    }
}

/// One backend judge as the router tracks it.
#[derive(Debug)]
struct Backend {
    addr: String,
    /// Flipped by the background health monitor (TCP probe) and by
    /// passive demotion when a request-path transport failure proves the
    /// backend is gone. An unhealthy backend is skipped by placement
    /// until a probe succeeds again.
    healthy: AtomicBool,
}

/// State shared between the accept loop, the health monitor and every
/// connection handler thread.
#[derive(Debug)]
struct RouterShared {
    ring: HashRing,
    backends: Vec<Backend>,
    key_ring: Option<Arc<KeyRing>>,
    retry_siblings: usize,
    max_frame_bytes: usize,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    backend_read_timeout: Option<Duration>,
    connect_timeout: Duration,
    health_interval: Duration,
    stop: Arc<AtomicBool>,
}

impl RouterShared {
    fn healthy(&self, backend: usize) -> bool {
        self.backends[backend].healthy.load(Ordering::Relaxed)
    }

    /// Passive demotion: a request-path transport failure is stronger
    /// evidence than a stale probe, so the flag drops immediately; the
    /// monitor re-promotes once probes succeed again.
    fn demote(&self, backend: usize) {
        self.backends[backend].healthy.store(false, Ordering::Relaxed);
    }

    /// The typed fault a dispute receives when the backend holding its
    /// model cannot be reached (directly or via siblings).
    fn unreachable(&self, home: usize, model_id: &str) -> WatermarkError {
        WatermarkError::Remote {
            message: format!(
                "model `{model_id}` is homed on backend {home} ({}), which is unreachable",
                self.backends[home].addr
            ),
        }
    }
}

/// Cloneable remote control for a serving [`JudgeRouter`]: signals the
/// accept loop to stop from any thread.
#[derive(Debug, Clone)]
pub struct RouterHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl RouterHandle {
    /// Requests shutdown. The accept loop is blocking, so a nudge
    /// connection (to the loopback rendering of the bound address, for
    /// the same reason as [`ServerHandle`](crate::ServerHandle)) wakes
    /// it; connection handler threads notice the flag at their next
    /// frame boundary.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let ip = if self.addr.ip().is_unspecified() {
            match self.addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            }
        } else {
            self.addr.ip()
        };
        let nudge = SocketAddr::new(ip, self.addr.port());
        let _ = TcpStream::connect_timeout(&nudge, Duration::from_millis(250));
    }
}

/// A bound, not-yet-serving fleet router. [`serve`](JudgeRouter::serve)
/// blocks the calling thread; [`spawn`](JudgeRouter::spawn) serves from
/// a background thread and returns a [`RunningRouter`].
#[derive(Debug)]
pub struct JudgeRouter {
    listener: TcpListener,
    shared: Arc<RouterShared>,
}

impl JudgeRouter {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    /// Refuses an empty backend list — a router with nowhere to route is
    /// a misconfiguration, not a degraded fleet.
    pub fn bind(
        addr: impl ToSocketAddrs + std::fmt::Display,
        config: RouterConfig,
    ) -> WatermarkResult<Self> {
        let ring = HashRing::new(config.backends.len(), config.ring_replicas)?;
        let listener = TcpListener::bind(&addr).map_err(|err| WatermarkError::Io {
            path: addr.to_string(),
            message: err.to_string(),
        })?;
        let backends = config
            .backends
            .into_iter()
            .map(|addr| Backend {
                addr,
                healthy: AtomicBool::new(true),
            })
            .collect();
        Ok(Self {
            listener,
            shared: Arc::new(RouterShared {
                ring,
                backends,
                key_ring: config.key_ring,
                retry_siblings: config.retry_siblings,
                max_frame_bytes: config.max_frame_bytes,
                read_timeout: config.read_timeout,
                write_timeout: config.write_timeout,
                backend_read_timeout: config.backend_read_timeout,
                connect_timeout: config.connect_timeout,
                health_interval: config.health_interval,
                stop: Arc::new(AtomicBool::new(false)),
            }),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("a bound listener has a local address")
    }

    /// A shutdown handle for this router.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            stop: Arc::clone(&self.shared.stop),
            addr: self.local_addr(),
        }
    }

    /// Runs the accept loop until [`RouterHandle::shutdown`] is called,
    /// blocking the calling thread. Each client connection is served by
    /// its own thread: a handful of claimant connections each fanning
    /// out to N backends is thread-per-connection's sweet spot, and the
    /// docket parallelism lives in the fan-out, not the accept path.
    pub fn serve(self) -> WatermarkResult<()> {
        let JudgeRouter { listener, shared } = self;
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || health_monitor(&shared))
        };
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || serve_connection(&shared, stream));
                }
                Err(err) if err.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // Persistent accept failures (fd exhaustion) must not
                    // spin the loop at 100% CPU.
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        let _ = monitor.join();
        Ok(())
    }

    /// Serves from a background thread, returning immediately.
    pub fn spawn(self) -> RunningRouter {
        let addr = self.local_addr();
        let handle = self.handle();
        let join = std::thread::spawn(move || self.serve());
        RunningRouter { addr, handle, join }
    }
}

/// A [`JudgeRouter`] serving from a background thread.
#[derive(Debug)]
pub struct RunningRouter {
    addr: SocketAddr,
    handle: RouterHandle,
    join: std::thread::JoinHandle<WatermarkResult<()>>,
}

impl RunningRouter {
    /// The address the router is reachable on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable shutdown handle.
    pub fn handle(&self) -> RouterHandle {
        self.handle.clone()
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(self) -> WatermarkResult<()> {
        self.handle.shutdown();
        self.join.join().map_err(|_| WatermarkError::Remote {
            message: "judge router thread panicked".to_string(),
        })?
    }
}

/// TCP-probes every backend, then sleeps `health_interval` (in short
/// slices, so shutdown is prompt), until stopped.
fn health_monitor(shared: &RouterShared) {
    while !shared.stop.load(Ordering::SeqCst) {
        for backend in &shared.backends {
            let alive = probe(&backend.addr, shared.connect_timeout);
            backend.healthy.store(alive, Ordering::Relaxed);
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
        }
        let mut slept = Duration::ZERO;
        while slept < shared.health_interval {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let nap = (shared.health_interval - slept).min(Duration::from_millis(50));
            std::thread::sleep(nap);
            slept += nap;
        }
    }
}

/// Connect-only liveness probe. Deliberately below the protocol: a keyed
/// backend refuses anonymous frames, so any frame-level probe would need
/// tenant credentials the monitor has no business holding.
fn probe(addr: &str, timeout: Duration) -> bool {
    match addr.to_socket_addrs() {
        Ok(addrs) => addrs.into_iter().any(|addr| TcpStream::connect_timeout(&addr, timeout).is_ok()),
        Err(_) => false,
    }
}

/// Per-client-connection routing state: the backend clients opened on
/// behalf of this connection, keyed by `(backend, tenant)` because each
/// backend connection authenticates as one tenant and carries its own
/// sequence counter.
struct ConnState {
    clients: HashMap<(usize, String), DisputeClient>,
    /// Highest frame sequence accepted from the client on this
    /// connection — the same replay floor a backend judge keeps, so the
    /// router is exactly as strict as the judge it fronts.
    last_sequence: u64,
}

/// Returns a usable (fresh or cached, never broken) client for
/// `backend` as `tenant`, demoting the backend if the connect fails.
fn backend_client<'a>(
    shared: &RouterShared,
    state: &'a mut ConnState,
    backend: usize,
    tenant: &TenantId,
) -> WatermarkResult<&'a mut DisputeClient> {
    let key = (backend, tenant.as_str().to_string());
    let reusable = state.clients.get(&key).is_some_and(|client| !client.is_broken());
    if !reusable {
        let auth = match &shared.key_ring {
            Some(ring) if !tenant.is_anonymous() => {
                let secret = ring.key(tenant).ok_or_else(|| WatermarkError::ProtocolViolation {
                    detail: format!("tenant `{tenant}` is missing from the router's key ring"),
                })?;
                Some(ClientAuth::new(tenant.clone(), secret.to_vec()))
            }
            _ => None,
        };
        let config = ClientConfig {
            connect_attempts: 1,
            connect_timeout: Some(shared.connect_timeout),
            read_timeout: shared.backend_read_timeout,
            write_timeout: shared.write_timeout,
            max_frame_bytes: shared.max_frame_bytes,
            auth,
            ..ClientConfig::default()
        };
        let addr: &str = &shared.backends[backend].addr;
        match DisputeClient::connect_with(addr, config) {
            Ok(client) => {
                state.clients.insert(key.clone(), client);
            }
            Err(err) => {
                shared.demote(backend);
                return Err(err);
            }
        }
    }
    Ok(state.clients.get_mut(&key).expect("the entry was just inserted or verified"))
}

/// Wire rendering of a routing-layer refusal.
fn fault_response(err: &WatermarkError) -> Response {
    Response::Error {
        fault: WireFault::from_error(err),
    }
}

/// Serves one client connection to completion: read a frame,
/// authenticate it, route the request, answer under the client's
/// correlation id. Requests are handled one at a time per connection —
/// pipelined clients still overlap across *connections*, and one
/// docket's parallelism comes from its backend fan-out.
fn serve_connection(shared: &RouterShared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(shared.read_timeout);
    let _ = stream.set_write_timeout(shared.write_timeout);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut state = ConnState {
        clients: HashMap::new(),
        last_sequence: 0,
    };
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let (header, payload) = match proto::read_frame(&mut reader, shared.max_frame_bytes) {
            Ok(Some(frame)) => frame,
            // Clean EOF between frames: the client is done.
            Ok(None) => return,
            // Torn frame, oversized payload, bad magic, or the idle
            // deadline: framing is unrecoverable either way.
            Err(err) => {
                send_response(&mut writer, NO_CORRELATION, &fault_response(&err));
                return;
            }
        };
        let tenant = match &shared.key_ring {
            None => TenantId::anonymous(),
            Some(ring) => match ring.verify_frame(&header, &payload, state.last_sequence) {
                Ok(tenant) => tenant,
                // Framing is intact, so the refusal is answered inline
                // and the connection kept — same policy as the judge.
                Err(err) => {
                    if !send_response(&mut writer, header.correlation_id, &fault_response(&err)) {
                        return;
                    }
                    continue;
                }
            },
        };
        state.last_sequence = state.last_sequence.max(header.sequence);
        let request = match proto::decode_payload::<Request>(&payload) {
            Ok(request) => request,
            Err(err) => {
                if !send_response(&mut writer, header.correlation_id, &fault_response(&err)) {
                    return;
                }
                continue;
            }
        };
        let response = route_request(shared, &mut state, &tenant, request);
        if !send_response(&mut writer, header.correlation_id, &response) {
            return;
        }
    }
}

/// Writes one response frame to the client; `false` means the client is
/// gone and the connection should be dropped. Responses travel
/// anonymous, exactly as a judge's do.
fn send_response(writer: &mut TcpStream, correlation_id: u64, response: &Response) -> bool {
    let frame = match proto::encode_frame(correlation_id, response) {
        Ok(frame) => frame,
        Err(err) => match proto::encode_frame(correlation_id, &fault_response(&err)) {
            Ok(frame) => frame,
            Err(_) => return false,
        },
    };
    writer.write_all(&frame).and_then(|()| writer.flush()).is_ok()
}

/// Maps one decoded request onto the fleet.
fn route_request(
    shared: &RouterShared,
    state: &mut ConnState,
    tenant: &TenantId,
    request: Request,
) -> Response {
    match request {
        Request::Ping => aggregate_ping(shared, state, tenant),
        // Single-model requests go to the key's home backend, with
        // bounded failover onto ring siblings.
        Request::RegisterModel { .. } | Request::RegisterModelRef { .. } | Request::Resolve { .. } => {
            let model_id = match &request {
                Request::RegisterModel { model_id, .. }
                | Request::RegisterModelRef { model_id, .. }
                | Request::Resolve { model_id, .. } => model_id.clone(),
                _ => unreachable!("the outer match admits only model-bearing arms"),
            };
            route_single(shared, state, tenant, &model_id, &request)
        }
        Request::ResolveDocket { disputes } => {
            // Unify onto the ref form the backends already speak: digest
            // every body once, share it across whichever shards reference
            // it, and let the per-backend clients decide what to inline.
            let mut bodies: HashMap<PayloadDigest, Arc<OwnershipClaim>> =
                HashMap::with_capacity(disputes.len());
            let mut refs = Vec::with_capacity(disputes.len());
            for dispute in disputes {
                let digest = PayloadDigest::of_claim(&dispute.claim);
                bodies.entry(digest).or_insert_with(|| Arc::new(dispute.claim));
                refs.push(DisputeRef::new(dispute.model_id, digest));
            }
            route_docket(shared, state, tenant, &bodies, refs)
        }
        Request::ResolveDocketRef { bodies, disputes } => {
            let mut map: HashMap<PayloadDigest, Arc<OwnershipClaim>> =
                HashMap::with_capacity(bodies.len());
            for body in bodies {
                let digest = PayloadDigest::of_claim(&body);
                map.entry(digest).or_insert_with(|| Arc::new(body));
            }
            route_docket(shared, state, tenant, &map, disputes)
        }
        Request::Payload { claims } => {
            // Replicate stored bodies to every reachable backend so
            // later digest-only references resolve wherever their
            // dispute lands.
            let digests: Vec<PayloadDigest> = claims.iter().map(PayloadDigest::of_claim).collect();
            let request = Request::Payload { claims };
            let (successes, first_failure) = broadcast(shared, state, tenant, &request);
            if successes == 0 {
                return first_failure.unwrap_or_else(|| fault_response(&no_backends_error(shared)));
            }
            Response::PayloadStored { digests }
        }
        Request::ListModels => {
            let mut union: BTreeSet<String> = BTreeSet::new();
            let mut answered = 0usize;
            let request = Request::ListModels;
            for backend in 0..shared.backends.len() {
                let Some(response) = backend_call(shared, state, tenant, backend, &request) else {
                    continue;
                };
                match response {
                    Response::Models { model_ids } => {
                        answered += 1;
                        union.extend(model_ids);
                    }
                    Response::Error { fault } => return Response::Error { fault },
                    other => return fault_response(&unexpected(&other, "Models")),
                }
            }
            if answered == 0 {
                return fault_response(&no_backends_error(shared));
            }
            Response::Models {
                model_ids: union.into_iter().collect(),
            }
        }
        Request::Deregister { model_id } => {
            // Broadcast: replicated warm starts put the model on every
            // backend, and degradation-era registrations may have landed
            // it on a sibling.
            let mut existed = false;
            let mut answered = 0usize;
            let request = Request::Deregister {
                model_id: model_id.clone(),
            };
            for backend in 0..shared.backends.len() {
                let Some(response) = backend_call(shared, state, tenant, backend, &request) else {
                    continue;
                };
                match response {
                    Response::Deregistered { existed: here, .. } => {
                        answered += 1;
                        existed |= here;
                    }
                    Response::Error { fault } => return Response::Error { fault },
                    other => return fault_response(&unexpected(&other, "Deregistered")),
                }
            }
            if answered == 0 {
                return fault_response(&no_backends_error(shared));
            }
            Response::Deregistered { model_id, existed }
        }
        Request::Stats => {
            let mut merged: BTreeMap<String, TenantStatsEntry> = BTreeMap::new();
            let mut answered = 0usize;
            let request = Request::Stats;
            for backend in 0..shared.backends.len() {
                let Some(response) = backend_call(shared, state, tenant, backend, &request) else {
                    continue;
                };
                match response {
                    Response::Stats { tenants } => {
                        answered += 1;
                        for entry in tenants {
                            merge_stats(merged.entry(entry.tenant.clone()).or_default(), entry);
                        }
                    }
                    Response::Error { fault } => return Response::Error { fault },
                    other => return fault_response(&unexpected(&other, "Stats")),
                }
            }
            if answered == 0 {
                return fault_response(&no_backends_error(shared));
            }
            Response::Stats {
                tenants: merged.into_values().collect(),
            }
        }
    }
}

/// The fault for "not a single backend could be reached".
fn no_backends_error(shared: &RouterShared) -> WatermarkError {
    WatermarkError::Remote {
        message: format!(
            "no reachable backend among the {} configured",
            shared.backends.len()
        ),
    }
}

/// Converts an unexpected backend response kind into a typed error.
fn unexpected(response: &Response, wanted: &str) -> WatermarkError {
    WatermarkError::ProtocolViolation {
        detail: format!("expected a {wanted} response, backend answered {response:?}"),
    }
}

/// One best-effort call to one backend: `None` means the backend was
/// skipped (unhealthy) or failed at the transport level (and has been
/// demoted). Used by the broadcast/aggregate arms, which tolerate
/// partial fleets.
fn backend_call(
    shared: &RouterShared,
    state: &mut ConnState,
    tenant: &TenantId,
    backend: usize,
    request: &Request,
) -> Option<Response> {
    if !shared.healthy(backend) {
        return None;
    }
    let client = backend_client(shared, state, backend, tenant).ok()?;
    match client.raw_request(request) {
        Ok(response) => Some(response),
        Err(_err) => {
            if client.is_broken() {
                shared.demote(backend);
            }
            None
        }
    }
}

/// Broadcasts one request to every healthy backend, returning how many
/// succeeded and the first typed refusal (if any) for error reporting.
fn broadcast(
    shared: &RouterShared,
    state: &mut ConnState,
    tenant: &TenantId,
    request: &Request,
) -> (usize, Option<Response>) {
    let mut successes = 0usize;
    let mut first_failure = None;
    for backend in 0..shared.backends.len() {
        match backend_call(shared, state, tenant, backend, request) {
            Some(Response::Error { fault }) => {
                first_failure.get_or_insert(Response::Error { fault });
            }
            Some(_) => successes += 1,
            None => {}
        }
    }
    (successes, first_failure)
}

/// Sums every backend's pong into a fleet-wide view. The router answers
/// its own protocol/format versions (it *is* the peer the client
/// negotiates with); model and claim counts aggregate whatever part of
/// the fleet is reachable — a ping is a liveness probe, so a degraded
/// fleet still pongs.
fn aggregate_ping(shared: &RouterShared, state: &mut ConnState, tenant: &TenantId) -> Response {
    let mut models_registered = 0u64;
    let mut claims_cached = 0u64;
    for backend in 0..shared.backends.len() {
        if let Some(Response::Pong {
            models_registered: models,
            claims_cached: claims,
            ..
        }) = backend_call(shared, state, tenant, backend, &Request::Ping)
        {
            models_registered += models;
            claims_cached += claims;
        }
    }
    Response::Pong {
        protocol_version: proto::PROTOCOL_VERSION,
        format_version: persist::FORMAT_VERSION,
        models_registered,
        claims_cached,
    }
}

/// Routes one single-model request: home first, then ring siblings in
/// deterministic order, skipping unhealthy backends, bounded by
/// `1 + retry_siblings` actual attempts. A sibling answering
/// `UnknownModel` for a key whose home is down is rewritten to the
/// unreachable fault — the model may well exist, just behind a dead
/// process, and "unknown" would mislead the claimant.
fn route_single(
    shared: &RouterShared,
    state: &mut ConnState,
    tenant: &TenantId,
    model_id: &str,
    request: &Request,
) -> Response {
    let candidates = shared.ring.candidates(tenant, model_id);
    let home = candidates[0];
    let max_attempts = 1 + shared.retry_siblings;
    let mut attempts = 0usize;
    for &backend in &candidates {
        if attempts >= max_attempts {
            break;
        }
        if !shared.healthy(backend) {
            continue;
        }
        attempts += 1;
        let client = match backend_client(shared, state, backend, tenant) {
            Ok(client) => client,
            Err(_err) => continue,
        };
        match client.raw_request(request) {
            Ok(Response::Error { fault }) => {
                if backend != home && matches!(fault, WireFault::UnknownModel { .. }) {
                    return fault_response(&shared.unreachable(home, model_id));
                }
                return Response::Error { fault };
            }
            Ok(response) => return response,
            Err(err) => {
                if client.is_broken() {
                    shared.demote(backend);
                    continue;
                }
                // The connection is fine — the request itself could not
                // be encoded; a sibling would refuse it identically.
                return fault_response(&err);
            }
        }
    }
    fault_response(&shared.unreachable(home, model_id))
}

/// Splits one docket across the fleet and stitches the verdicts back in
/// input order.
///
/// Within one round every shard is *sent* before any shard is
/// *received*, so backends resolve concurrently. A shard lost to a
/// transport failure demotes its backend and re-enters the next round,
/// where its disputes re-route onto their next healthy candidates —
/// `retry_siblings` bounds the extra rounds. A backend demanding claim
/// bodies the router cannot supply turns the whole docket into one
/// upstream `NeedPayload` (the client retries with bodies inlined); a
/// typed refusal (quota, oversized shard) fails the whole docket, the
/// same verdict a single judge would have given.
fn route_docket(
    shared: &RouterShared,
    state: &mut ConnState,
    tenant: &TenantId,
    bodies: &HashMap<PayloadDigest, Arc<OwnershipClaim>>,
    disputes: Vec<DisputeRef>,
) -> Response {
    let total = disputes.len();
    let mut slots: Vec<Option<WatermarkResult<wdte_core::VerificationReport>>> = Vec::new();
    slots.resize_with(total, || None);
    let homes: Vec<usize> = disputes
        .iter()
        .map(|dispute| shared.ring.home(tenant, &dispute.model_id))
        .collect();
    let mut demanded: Vec<PayloadDigest> = Vec::new();
    let mut demanded_seen: HashSet<PayloadDigest> = HashSet::new();
    let mut pending: Vec<usize> = (0..total).collect();
    // Backends that failed *this docket*: stronger than the shared
    // healthy flag (which the monitor may flip back mid-docket) — a
    // backend that already ate one shard of this docket never gets
    // another.
    let mut failed: HashSet<usize> = HashSet::new();
    for _round in 0..=shared.retry_siblings {
        if pending.is_empty() {
            break;
        }
        // Assign every still-pending dispute to its first live
        // candidate; usize::MAX marks "no candidate left".
        let choices: Vec<usize> = pending
            .iter()
            .map(|&idx| {
                shared
                    .ring
                    .candidates(tenant, &disputes[idx].model_id)
                    .into_iter()
                    .find(|&backend| !failed.contains(&backend) && shared.healthy(backend))
                    .unwrap_or(usize::MAX)
            })
            .collect();
        let mut plan: Vec<(usize, Vec<usize>)> = Vec::new();
        for (backend, positions) in fleet::split_indices(pending.len(), |pos| choices[pos]) {
            let indices: Vec<usize> = positions.iter().map(|&pos| pending[pos]).collect();
            if backend == usize::MAX {
                // Out of candidates now; no later round can help.
                for idx in indices {
                    slots[idx] = Some(Err(shared.unreachable(homes[idx], &disputes[idx].model_id)));
                }
            } else {
                plan.push((backend, indices));
            }
        }
        // Send phase: every shard goes on the wire before any verdict is
        // awaited, so the backends overlap.
        let mut sent = Vec::with_capacity(plan.len());
        let mut next_pending: Vec<usize> = Vec::new();
        for (backend, indices) in plan {
            let shard: Vec<DisputeRef> = indices.iter().map(|&idx| disputes[idx].clone()).collect();
            match backend_client(shared, state, backend, tenant) {
                Ok(client) => match client.send_docket_ref(bodies, &shard) {
                    Ok(ticket) => sent.push((backend, indices, ticket)),
                    Err(err) => {
                        if client.is_broken() {
                            shared.demote(backend);
                            failed.insert(backend);
                            next_pending.extend(indices);
                        } else {
                            return fault_response(&err);
                        }
                    }
                },
                Err(_err) => {
                    failed.insert(backend);
                    next_pending.extend(indices);
                }
            }
        }
        // Receive phase, in send order.
        for (backend, indices, ticket) in sent {
            let key = (backend, tenant.as_str().to_string());
            let client = state
                .clients
                .get_mut(&key)
                .expect("this shard was sent on this connection's client");
            match client.recv_docket_outcome(ticket) {
                Ok(DocketOutcome::Verdicts(verdicts)) => {
                    if let Err(err) = fleet::scatter(&mut slots, &indices, verdicts) {
                        return fault_response(&err);
                    }
                    for &idx in &indices {
                        if backend != homes[idx]
                            && matches!(slots[idx], Some(Err(WatermarkError::UnknownModel { .. })))
                        {
                            slots[idx] =
                                Some(Err(shared.unreachable(homes[idx], &disputes[idx].model_id)));
                        }
                    }
                }
                Ok(DocketOutcome::NeedPayload(digests)) => {
                    if digests.is_empty() {
                        return fault_response(&WatermarkError::ProtocolViolation {
                            detail: "backend demanded an empty payload list".to_string(),
                        });
                    }
                    // The whole docket bounces as one NeedPayload; these
                    // disputes leave the retry loop (the client's clean
                    // resend covers them).
                    for digest in digests {
                        if demanded_seen.insert(digest) {
                            demanded.push(digest);
                        }
                    }
                }
                Err(err) => {
                    if client.is_broken() {
                        shared.demote(backend);
                        failed.insert(backend);
                        next_pending.extend(indices);
                    } else {
                        // A typed whole-shard refusal (tenant quota,
                        // oversized docket): the single-judge answer to
                        // this docket would have been the same error.
                        return fault_response(&err);
                    }
                }
            }
        }
        pending = next_pending;
    }
    // Rounds exhausted with shards still unplaced.
    for idx in pending {
        slots[idx] = Some(Err(shared.unreachable(homes[idx], &disputes[idx].model_id)));
    }
    if !demanded.is_empty() {
        return Response::NeedPayload { digests: demanded };
    }
    let verdicts: Vec<DocketVerdict> = slots
        .into_iter()
        .map(|slot| {
            DocketVerdict::from_result(slot.unwrap_or_else(|| {
                Err(WatermarkError::ProtocolViolation {
                    detail: "a dispute fell through docket routing without a verdict".to_string(),
                })
            }))
        })
        .collect();
    Response::Docket { verdicts }
}

/// Adds `from`'s counters into `into` (field-by-field sum), keeping the
/// tenant name.
fn merge_stats(into: &mut TenantStatsEntry, from: TenantStatsEntry) {
    into.tenant = from.tenant;
    into.models += from.models;
    into.dockets += from.dockets;
    into.claims += from.claims;
    into.cache_hits += from.cache_hits;
    into.cache_misses += from.cache_misses;
    into.evictions += from.evictions;
    into.auth_failures += from.auth_failures;
    into.claim_bytes += from.claim_bytes;
    into.in_flight += from.in_flight;
}
