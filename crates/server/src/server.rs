//! The judge's side of the wire: a readiness-driven accept/read loop
//! (non-blocking sockets + `poll(2)`) feeding decoded requests into the
//! shared work-stealing pool.
//!
//! One event-loop thread owns every socket's *read* side: it polls the
//! listener and all connections, runs each connection's frame state
//! machine on readable bytes, and hands complete requests to
//! `rayon::spawn`. Responses are written by the pool workers through a
//! per-connection [`ConnWriter`] (a `try_clone`d socket behind a mutex),
//! so out-of-order completion across a connection's in-flight requests is
//! the normal case — WDTP correlation ids let the client match them
//! up. Idle connections therefore cost one file descriptor and a little
//! state, not a parked thread.
//!
//! When a [`KeyRing`] is configured, each frame's tenant/sequence/tag
//! fields (WDTP v4) are verified before the payload is decoded: a bad tag
//! or a replayed sequence is answered with a structured `AuthFailed`
//! fault and the connection stays open (framing is intact), while the
//! offending frame is dropped without touching the service. Without a key
//! ring the judge is open and every frame maps to the anonymous tenant.

use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use wdte_core::error::{WatermarkError, WatermarkResult};
use wdte_core::proto::{
    self, DocketVerdict, FrameHeader, PayloadDigest, Request, Response, WireFault, FRAME_HEADER_BYTES,
    FRAME_PRELUDE_BYTES, NO_CORRELATION,
};
use wdte_core::{
    persist, DisputeService, KeyRing, OwnershipClaim, SharedDispute, TenantId, VerificationReport,
};

#[cfg(not(unix))]
compile_error!("wdte-server's readiness loop is built on poll(2) and requires a unix target");

/// Minimal FFI surface over `poll(2)`. This module is the only place in
/// the workspace allowed to use `unsafe` (the crate root carries
/// `#![deny(unsafe_code)]`): the build environment is offline, so the
/// usual `libc`/`mio` crates are unavailable and the one syscall std does
/// not wrap has to be declared by hand. std itself links libc, so the
/// symbol is always present.
#[allow(unsafe_code)]
mod sys {
    use std::io;

    /// Layout-compatible mirror of C's `struct pollfd`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    #[cfg(target_os = "linux")]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = u32;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
    }

    /// Polls `fds` for up to `timeout_ms` (0 = immediate, negative =
    /// forever), returning how many entries have non-zero `revents`.
    /// Retries on `EINTR`.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is an exclusively borrowed slice of
            // `#[repr(C)]` structs matching the kernel's pollfd layout,
            // valid for the whole call, and `nfds` is its exact length;
            // the kernel only writes within the slice (the `revents`
            // fields).
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
    }

    /// Polls a single descriptor, returning whether it became ready.
    pub fn poll_one(fd: i32, events: i16, timeout_ms: i32) -> io::Result<bool> {
        let mut fds = [PollFd {
            fd,
            events,
            revents: 0,
        }];
        Ok(poll_fds(&mut fds, timeout_ms)? > 0)
    }
}

/// Poll timeout of the event loop. Bounds how quickly the loop notices a
/// shutdown request, a connection whose pipeline-cap pause should lift,
/// and idle reaping — without a self-pipe, this tick is the wake-up of
/// last resort.
const POLL_TICK_MS: i32 = 20;

/// Tuning knobs of a [`JudgeServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Cap on concurrently open connections; arrivals beyond it wait in
    /// the listener's accept queue until a slot frees (TCP backpressure).
    /// `0` means unlimited, matching the 0-disables convention of every
    /// other knob in the workspace (`max_docket(0)`, the `serve_judge`
    /// flags) — with the readiness loop an idle connection costs a file
    /// descriptor, not a thread, so unlimited is a reasonable choice on
    /// trusted networks.
    pub max_connections: usize,
    /// Receiver-side cap on one frame's payload; hostile length prefixes
    /// beyond it are refused before any allocation.
    pub max_frame_bytes: usize,
    /// Idle reaping: a connection with no in-flight requests and no bytes
    /// received for this long is closed. `None` keeps idle connections
    /// forever — only sensible on trusted networks.
    pub read_timeout: Option<Duration>,
    /// Per-response write deadline. A worker delivering a response to a
    /// peer that stops draining its socket gives up (and closes the
    /// connection) after this long, so a stalled client cannot pin pool
    /// workers indefinitely. `None` waits forever.
    pub write_timeout: Option<Duration>,
    /// Per-connection cap on decoded requests in flight at once. A
    /// connection at the cap stops being polled for reads until a
    /// response completes — pipelining backpressure, so one greedy client
    /// cannot queue unbounded work. `0` means unlimited.
    pub max_pipeline: usize,
    /// Per-request width limit scoped (via the rayon shim's virtual
    /// [`rayon::ThreadPool`] handle) around each request's processing.
    /// All requests share the one process-global work-stealing pool —
    /// sized by `serve_judge --workers` through
    /// [`rayon::ThreadPoolBuilder::build_global`] — and this limit caps
    /// how wide each request's dispute × batch-shard fan-out splits on
    /// that shared pool; `0` imposes no per-request limit (requests use
    /// the whole pool).
    pub worker_threads: usize,
    /// Tenant keys for frame authentication. `None` (the default) serves
    /// an open judge: the auth fields of each frame are ignored and every
    /// request runs as the anonymous tenant. `Some` requires every frame
    /// to carry a valid tenant id, a strictly increasing per-connection
    /// sequence and an HMAC-SHA-256 tag over the payload.
    pub key_ring: Option<Arc<KeyRing>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            max_frame_bytes: proto::DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(30)),
            max_pipeline: 64,
            worker_threads: 0,
            key_ring: None,
        }
    }
}

/// Cloneable remote control for a serving [`JudgeServer`]: signals the
/// event loop to stop from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Requests shutdown: the event loop exits at its next wake-up (the
    /// ~20 ms poll tick bounds the wait). A nudge
    /// connection is opened (and immediately closed) as a belt-and-braces
    /// wake-up; requests already dispatched finish on the worker pool.
    ///
    /// The nudge always targets a *loopback* address: a server bound to
    /// the unspecified address reports `0.0.0.0:port` (or `[::]:port`) as
    /// its local address, and connecting to the unspecified address is
    /// platform-dependent — on some systems it fails outright, which used
    /// to leave the pre-poll accept loop parked forever.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let ip = if self.addr.ip().is_unspecified() {
            match self.addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            }
        } else {
            self.addr.ip()
        };
        let nudge = SocketAddr::new(ip, self.addr.port());
        // Failure is fine: the poll tick wakes the loop regardless.
        let _ = TcpStream::connect_timeout(&nudge, Duration::from_millis(250));
    }
}

/// A bound, not-yet-serving judge. [`serve`](JudgeServer::serve) blocks
/// the calling thread; [`spawn`](JudgeServer::spawn) serves from a
/// background thread and returns a [`RunningServer`].
#[derive(Debug)]
pub struct JudgeServer {
    service: Arc<DisputeService>,
    listener: TcpListener,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl JudgeServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port). The
    /// service is shared: the caller can keep registering models on its
    /// own `Arc` while the server resolves claims against them.
    pub fn bind(
        addr: impl ToSocketAddrs + std::fmt::Display,
        service: Arc<DisputeService>,
        config: ServerConfig,
    ) -> WatermarkResult<Self> {
        let listener = TcpListener::bind(&addr).map_err(|err| WatermarkError::Io {
            path: addr.to_string(),
            message: err.to_string(),
        })?;
        Ok(Self {
            service,
            listener,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("a bound listener has a local address")
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr(),
        }
    }

    /// Runs the event loop until [`ServerHandle::shutdown`] is called,
    /// blocking the calling thread. Requests already handed to the worker
    /// pool at shutdown finish and their responses are still delivered
    /// (each worker holds its connection's writer alive).
    pub fn serve(self) -> WatermarkResult<()> {
        let JudgeServer {
            service,
            listener,
            config,
            stop,
        } = self;
        listener.set_nonblocking(true).map_err(|err| WatermarkError::Io {
            path: "listener".to_string(),
            message: err.to_string(),
        })?;
        let listener_fd = listener.as_raw_fd();
        let mut conns: Vec<Conn> = Vec::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let accepting = config.max_connections == 0 || conns.len() < config.max_connections;
            let mut fds = Vec::with_capacity(conns.len() + 1);
            if accepting {
                fds.push(sys::PollFd {
                    fd: listener_fd,
                    events: sys::POLLIN,
                    revents: 0,
                });
            }
            // Connections at their pipeline cap (and half-closed ones)
            // are left out of the poll set: their pending bytes stay in
            // the kernel buffer until a response completes, which is
            // exactly the backpressure the cap exists to apply.
            let mut polled = Vec::with_capacity(conns.len());
            for (index, conn) in conns.iter().enumerate() {
                if conn.read_closed || conn.paused(&config) {
                    continue;
                }
                fds.push(sys::PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events: sys::POLLIN,
                    revents: 0,
                });
                polled.push(index);
            }
            sys::poll_fds(&mut fds, POLL_TICK_MS).map_err(|err| WatermarkError::Io {
                path: "poll".to_string(),
                message: err.to_string(),
            })?;
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let offset = usize::from(accepting);
            let mut closing: Vec<usize> = Vec::new();
            for (slot, &index) in polled.iter().enumerate() {
                if fds[offset + slot].revents == 0 {
                    continue;
                }
                if !conns[index].drain(&service, &config) {
                    closing.push(index);
                }
            }
            for &index in closing.iter().rev() {
                conns.swap_remove(index);
            }
            if accepting && fds.first().is_some_and(|entry| entry.revents != 0) {
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if let Some(conn) = Conn::new(stream, &config) {
                                conns.push(conn);
                            }
                            if config.max_connections != 0 && conns.len() >= config.max_connections {
                                break;
                            }
                        }
                        Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                        Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            // Persistent accept failures (EMFILE when fds
                            // are exhausted, for instance) keep the
                            // listener readable; without a pause the loop
                            // would spin at 100% CPU exactly when the
                            // judge should be shedding load.
                            std::thread::sleep(Duration::from_millis(20));
                            break;
                        }
                    }
                }
            }
            conns.retain(|conn| {
                if conn.writer.dead.load(Ordering::Acquire) {
                    return false;
                }
                if conn.read_closed {
                    // Half-closed peer: keep the writer alive until the
                    // last in-flight response is delivered.
                    return conn.in_flight.load(Ordering::SeqCst) > 0;
                }
                if let Some(timeout) = config.read_timeout {
                    if conn.in_flight.load(Ordering::SeqCst) == 0
                        && conn.last_activity.elapsed() >= timeout
                    {
                        return false;
                    }
                }
                true
            });
        }
        Ok(())
    }

    /// Serves from a background thread, returning immediately.
    pub fn spawn(self) -> RunningServer {
        let addr = self.local_addr();
        let handle = self.handle();
        let join = std::thread::spawn(move || self.serve());
        RunningServer { addr, handle, join }
    }
}

/// A [`JudgeServer`] serving from a background thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    join: std::thread::JoinHandle<WatermarkResult<()>>,
}

impl RunningServer {
    /// The address the server is reachable on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable shutdown handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Stops the event loop and joins the serving thread.
    pub fn shutdown(self) -> WatermarkResult<()> {
        self.handle.shutdown();
        self.join.join().map_err(|_| WatermarkError::Remote {
            message: "judge server thread panicked".to_string(),
        })?
    }
}

/// The write half of a connection, shared between the event loop (error
/// replies) and every pool worker carrying one of its responses. The
/// mutex spans a whole frame so concurrent responses never interleave;
/// the socket is non-blocking, so a full send buffer parks the writer in
/// `poll(POLLOUT)` up to the configured deadline instead of forever.
#[derive(Debug)]
struct ConnWriter {
    stream: Mutex<TcpStream>,
    fd: i32,
    dead: AtomicBool,
    write_timeout: Option<Duration>,
}

impl ConnWriter {
    /// Writes one response frame; returns `false` (and marks the
    /// connection dead) if the peer is gone or the deadline expired.
    fn send(&self, correlation_id: u64, response: &Response) -> bool {
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        let frame = match proto::encode_frame(correlation_id, response) {
            Ok(frame) => frame,
            // The response itself cannot be framed (a >4 GiB payload);
            // tell the peer which request died rather than hanging it.
            Err(err) => {
                let fallback = Response::Error {
                    fault: WireFault::from_error(&err),
                };
                match proto::encode_frame(correlation_id, &fallback) {
                    Ok(frame) => frame,
                    Err(_) => {
                        self.dead.store(true, Ordering::Release);
                        return false;
                    }
                }
            }
        };
        let mut stream = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = self.write_timeout.map(|timeout| Instant::now() + timeout);
        let mut written = 0usize;
        while written < frame.len() {
            match stream.write(&frame[written..]) {
                Ok(0) => {
                    self.dead.store(true, Ordering::Release);
                    return false;
                }
                Ok(n) => written += n,
                Err(err) if err.kind() == ErrorKind::Interrupted => {}
                Err(err) if err.kind() == ErrorKind::WouldBlock => {
                    let wait_ms = match deadline {
                        Some(deadline) => {
                            let left = deadline.saturating_duration_since(Instant::now());
                            if left.is_zero() {
                                self.dead.store(true, Ordering::Release);
                                return false;
                            }
                            left.as_millis().clamp(1, 1000) as i32
                        }
                        None => 1000,
                    };
                    if sys::poll_one(self.fd, sys::POLLOUT, wait_ms).is_err() {
                        self.dead.store(true, Ordering::Release);
                        return false;
                    }
                }
                Err(_) => {
                    self.dead.store(true, Ordering::Release);
                    return false;
                }
            }
        }
        true
    }
}

/// Frame-reassembly state of one connection's read side.
enum ReadState {
    /// Collecting the 58-byte header; the magic + version prelude is
    /// validated as soon as its 6 bytes arrive, so an older peer (whose
    /// header is shorter) is refused with a version error instead of a
    /// confusing truncation diagnostic.
    Header {
        buf: [u8; FRAME_HEADER_BYTES],
        filled: usize,
        prelude_checked: bool,
    },
    /// Collecting `header.announced` payload bytes for one frame.
    Payload { header: FrameHeader, buf: Vec<u8> },
}

impl ReadState {
    fn header() -> Self {
        ReadState::Header {
            buf: [0u8; FRAME_HEADER_BYTES],
            filled: 0,
            prelude_checked: false,
        }
    }
}

/// One accepted connection as the event loop sees it.
struct Conn {
    /// The read half (the accepted socket itself, non-blocking).
    stream: TcpStream,
    /// The shared write half (a `try_clone`d descriptor).
    writer: Arc<ConnWriter>,
    state: ReadState,
    /// Requests dispatched to the pool whose responses have not been
    /// written yet. Incremented synchronously at dispatch, decremented by
    /// a drop guard in the worker, so the pipeline cap can never leak.
    in_flight: Arc<AtomicUsize>,
    /// The peer half-closed its write side; the connection lingers only
    /// to deliver in-flight responses.
    read_closed: bool,
    last_activity: Instant,
    /// Highest frame sequence accepted on this connection. Authenticated
    /// frames must carry a strictly larger sequence, so a recorded frame
    /// cannot be replayed within the connection (and a fresh connection
    /// starts at 0, forcing the client to start counting from 1).
    last_sequence: u64,
}

impl Conn {
    /// Prepares an accepted socket for the event loop; `None` if the
    /// socket died before setup finished.
    fn new(stream: TcpStream, config: &ServerConfig) -> Option<Self> {
        stream.set_nonblocking(true).ok()?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone().ok()?;
        let fd = write_half.as_raw_fd();
        Some(Self {
            stream,
            writer: Arc::new(ConnWriter {
                stream: Mutex::new(write_half),
                fd,
                dead: AtomicBool::new(false),
                write_timeout: config.write_timeout,
            }),
            state: ReadState::header(),
            in_flight: Arc::new(AtomicUsize::new(0)),
            read_closed: false,
            last_activity: Instant::now(),
            last_sequence: 0,
        })
    }

    /// Resolves the tenant a frame runs as. An open judge (no key ring)
    /// ignores the auth fields entirely; a keyed judge delegates to
    /// [`KeyRing::verify_frame`] (tenant lookup, constant-time tag check,
    /// strictly increasing sequence).
    fn authenticate(
        key_ring: Option<&KeyRing>,
        header: &FrameHeader,
        payload: &[u8],
        last_sequence: u64,
    ) -> WatermarkResult<TenantId> {
        match key_ring {
            None => Ok(TenantId::anonymous()),
            Some(ring) => ring.verify_frame(header, payload, last_sequence),
        }
    }

    /// Whether the pipeline cap forbids reading more requests for now.
    fn paused(&self, config: &ServerConfig) -> bool {
        config.max_pipeline > 0 && self.in_flight.load(Ordering::SeqCst) >= config.max_pipeline
    }

    /// Reads everything currently available, dispatching complete frames.
    /// Returns `false` when the connection must be dropped now (protocol
    /// violation or transport error); a clean half-close and the pipeline
    /// cap both return `true` and are handled by the caller's bookkeeping.
    fn drain(&mut self, service: &Arc<DisputeService>, config: &ServerConfig) -> bool {
        let mut scratch = [0u8; 16 << 10];
        loop {
            if self.paused(config) {
                return true;
            }
            match &mut self.state {
                ReadState::Header {
                    buf,
                    filled,
                    prelude_checked,
                } => match self.stream.read(&mut buf[*filled..]) {
                    Ok(0) => {
                        if *filled == 0 {
                            self.read_closed = true;
                            return true;
                        }
                        Self::send_fault(
                            &self.writer,
                            NO_CORRELATION,
                            &WatermarkError::ProtocolViolation {
                                detail: format!(
                                    "stream closed after {filled} of {FRAME_HEADER_BYTES} header bytes"
                                ),
                            },
                        );
                        return false;
                    }
                    Ok(n) => {
                        *filled += n;
                        self.last_activity = Instant::now();
                        if !*prelude_checked && *filled >= FRAME_PRELUDE_BYTES {
                            if let Err(err) = proto::check_prelude(&buf[..FRAME_PRELUDE_BYTES]) {
                                Self::send_fault(&self.writer, NO_CORRELATION, &err);
                                return false;
                            }
                            *prelude_checked = true;
                        }
                        if *filled == FRAME_HEADER_BYTES {
                            let header = match proto::check_header(buf, config.max_frame_bytes) {
                                Ok(header) => header,
                                Err(err) => {
                                    // The correlation id bytes are fixed
                                    // by the layout even when the rest of
                                    // the header is refused, so the fault
                                    // can still name the request it kills.
                                    let correlation_id = u64::from_le_bytes(
                                        buf[6..14].try_into().expect("header slice is 8 bytes"),
                                    );
                                    Self::send_fault(&self.writer, correlation_id, &err);
                                    return false;
                                }
                            };
                            // Reserve at most 64 KiB up front; the rest
                            // grows as bytes actually arrive, so a
                            // hostile prefix below the cap still cannot
                            // reserve more memory than the peer sends.
                            self.state = ReadState::Payload {
                                buf: Vec::with_capacity(header.announced.min(64 << 10)),
                                header,
                            };
                        }
                    }
                    Err(err) if err.kind() == ErrorKind::WouldBlock => return true,
                    Err(err) if err.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.writer.dead.store(true, Ordering::Release);
                        return false;
                    }
                },
                ReadState::Payload { header, buf } => {
                    if buf.len() == header.announced {
                        let header = *header;
                        let payload = std::mem::take(buf);
                        self.state = ReadState::header();
                        // Authenticate before decoding: a frame that
                        // fails verification must not reach the service.
                        // Framing is intact either way, so the failure is
                        // answered inline and the connection kept; the
                        // sequence floor only advances on success, so a
                        // replayed frame stays refusable forever.
                        let tenant = match Self::authenticate(
                            config.key_ring.as_deref(),
                            &header,
                            &payload,
                            self.last_sequence,
                        ) {
                            Ok(tenant) => {
                                self.last_sequence = self.last_sequence.max(header.sequence);
                                tenant
                            }
                            Err(err) => {
                                let claimed = TenantId::from_field(&header.tenant)
                                    .unwrap_or_else(|_| TenantId::anonymous());
                                service.ledger().record_auth_failure(&claimed);
                                Self::send_fault(&self.writer, header.correlation_id, &err);
                                continue;
                            }
                        };
                        Self::dispatch(
                            service,
                            config,
                            &self.writer,
                            &self.in_flight,
                            header.correlation_id,
                            tenant,
                            payload,
                        );
                        continue;
                    }
                    let announced = header.announced;
                    let want = (announced - buf.len()).min(scratch.len());
                    match self.stream.read(&mut scratch[..want]) {
                        Ok(0) => {
                            Self::send_fault(
                                &self.writer,
                                header.correlation_id,
                                &WatermarkError::ProtocolViolation {
                                    detail: format!(
                                        "stream closed after {} of {announced} payload bytes",
                                        buf.len()
                                    ),
                                },
                            );
                            return false;
                        }
                        Ok(n) => {
                            buf.extend_from_slice(&scratch[..n]);
                            self.last_activity = Instant::now();
                        }
                        Err(err) if err.kind() == ErrorKind::WouldBlock => return true,
                        Err(err) if err.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.writer.dead.store(true, Ordering::Release);
                            return false;
                        }
                    }
                }
            }
        }
    }

    /// Best-effort structured error reply for frame-level failures.
    fn send_fault(writer: &ConnWriter, correlation_id: u64, err: &WatermarkError) {
        let _ = writer.send(
            correlation_id,
            &Response::Error {
                fault: WireFault::from_error(err),
            },
        );
    }

    /// Hands one complete frame to the worker pool. A payload that does
    /// not decode as a [`Request`] is answered inline and the connection
    /// kept: framing is intact, so the next frame is readable. The
    /// tenant's in-flight quota is charged here, before the spawn, so a
    /// tenant at its cap is refused with a structured fault instead of
    /// queueing work.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        service: &Arc<DisputeService>,
        config: &ServerConfig,
        writer: &Arc<ConnWriter>,
        in_flight: &Arc<AtomicUsize>,
        correlation_id: u64,
        tenant: TenantId,
        payload: Vec<u8>,
    ) {
        let request = match proto::decode_payload::<Request>(&payload) {
            Ok(request) => request,
            Err(err) => {
                Self::send_fault(writer, correlation_id, &err);
                return;
            }
        };
        if let Err(err) = service.ledger().try_begin_request(&tenant, service.quotas()) {
            Self::send_fault(writer, correlation_id, &err);
            return;
        }
        in_flight.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(service);
        let writer = Arc::clone(writer);
        let in_flight = Arc::clone(in_flight);
        let width = config.worker_threads;
        rayon::spawn(move || {
            /// Decrements (and releases the tenant's in-flight slot) on
            /// every exit path, including a panicking handler, so a
            /// poisoned request can never wedge its connection at the
            /// pipeline cap or leak quota.
            struct Guard {
                in_flight: Arc<AtomicUsize>,
                service: Arc<DisputeService>,
                tenant: TenantId,
            }
            impl Drop for Guard {
                fn drop(&mut self) {
                    self.service.ledger().end_request(&self.tenant);
                    self.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let guard = Guard {
                in_flight,
                service: Arc::clone(&service),
                tenant,
            };
            let tenant = &guard.tenant;
            let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if width > 0 {
                    // A scoped width override, not a thread spawn: the
                    // handle owns no threads, and the request still
                    // executes on the shared global work-stealing pool.
                    rayon::ThreadPoolBuilder::new()
                        .num_threads(width)
                        .build()
                        .expect("the rayon shim never fails to build a pool handle")
                        .install(|| handle_request(&service, tenant, request))
                } else {
                    handle_request(&service, tenant, request)
                }
            }))
            .unwrap_or_else(|_| Response::Error {
                fault: WireFault::Internal {
                    detail: "judge panicked while serving the request".to_string(),
                },
            });
            // Release the slot *before* the response is written: a client
            // that has already read this verdict must be able to pipeline
            // its next request without racing the guard drop.
            drop(guard);
            writer.send(correlation_id, &response);
        });
    }
}

/// Wire rendering of a service-layer refusal.
fn fault_response(err: &WatermarkError) -> Response {
    Response::Error {
        fault: WireFault::from_error(err),
    }
}

/// Maps one request onto the shared service as `tenant`. Every
/// model-touching arm goes through the tenant-scoped (`*_as`) service
/// entry points, so quotas are charged and namespaces enforced exactly
/// once, here at the wire boundary.
fn handle_request(service: &DisputeService, tenant: &TenantId, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong {
            protocol_version: proto::PROTOCOL_VERSION,
            format_version: persist::FORMAT_VERSION,
            models_registered: service.len() as u64,
            claims_cached: service.claims().len() as u64,
        },
        Request::RegisterModel { model_id, model } => {
            let num_trees = model.num_trees() as u64;
            match service.register_digested_as(tenant, model_id.clone(), &model) {
                Ok((digest, _compiled)) => Response::Registered {
                    model_id,
                    num_trees,
                    digest,
                },
                Err(err) => fault_response(&err),
            }
        }
        Request::RegisterModelRef { model_id, digest } => {
            match service.register_by_digest_as(tenant, model_id.clone(), digest) {
                Ok(Some(compiled)) => Response::Registered {
                    model_id,
                    num_trees: compiled.num_trees() as u64,
                    digest,
                },
                Ok(None) => Response::NeedPayload {
                    digests: vec![digest],
                },
                Err(err) => fault_response(&err),
            }
        }
        Request::Resolve { model_id, claim } => match service.resolve_as(tenant, &model_id, &claim) {
            Ok(report) => {
                // A single resolution is a docket of one for accounting.
                service.ledger().record_docket(tenant, 1);
                Response::Resolved { report }
            }
            Err(err) => fault_response(&err),
        },
        Request::ResolveDocket { disputes } => {
            // Full-body dockets go through the same content cache and
            // dedup path as digest dockets: duplicate claims inside one
            // docket resolve once, and their bodies become available for
            // later digest-only references. The docket-size check runs
            // *before* any claim is cached, so an oversized docket cannot
            // allocate claim bytes on its way to being refused.
            if let Err(err) = service.check_docket_size(disputes.len()) {
                return fault_response(&err);
            }
            let mut shared: Vec<SharedDispute> = Vec::with_capacity(disputes.len());
            for dispute in disputes {
                match service.claims().insert_for(tenant, service.quotas(), dispute.claim) {
                    Ok((digest, claim)) => {
                        shared.push(SharedDispute::new(dispute.model_id, digest, claim));
                    }
                    Err(err) => return fault_response(&err),
                }
            }
            docket_response(service.resolve_docket_shared_as(tenant, &shared))
        }
        Request::ResolveDocketRef { bodies, disputes } => {
            // Same ordering as the full-body path: an oversized docket is
            // refused before any inlined body can allocate cache bytes.
            if let Err(err) = service.check_docket_size(disputes.len()) {
                return fault_response(&err);
            }
            // Inlined bodies are looked up request-locally *first*: a
            // digest carried in this very request must resolve even if
            // the cache is too small to hold it, otherwise a client
            // retrying after NeedPayload could loop forever.
            let mut local: HashMap<PayloadDigest, Arc<OwnershipClaim>> =
                HashMap::with_capacity(bodies.len());
            for body in bodies {
                match service.claims().insert_for(tenant, service.quotas(), body) {
                    Ok((digest, claim)) => {
                        local.insert(digest, claim);
                    }
                    Err(err) => return fault_response(&err),
                }
            }
            let mut missing: Vec<PayloadDigest> = Vec::new();
            let mut seen: HashSet<PayloadDigest> = HashSet::new();
            let mut shared: Vec<SharedDispute> = Vec::with_capacity(disputes.len());
            let mut hits = 0u64;
            let mut misses = 0u64;
            for dispute in disputes {
                if let Some(claim) = local.get(&dispute.digest).cloned() {
                    shared.push(SharedDispute::new(dispute.model_id, dispute.digest, claim));
                    continue;
                }
                match service.claims().get(&dispute.digest) {
                    Some(claim) => {
                        hits += 1;
                        shared.push(SharedDispute::new(dispute.model_id, dispute.digest, claim));
                    }
                    None => {
                        misses += 1;
                        if seen.insert(dispute.digest) {
                            missing.push(dispute.digest);
                        }
                    }
                }
            }
            service.ledger().record_cache_hits(tenant, hits);
            service.ledger().record_cache_misses(tenant, misses);
            if !missing.is_empty() {
                return Response::NeedPayload { digests: missing };
            }
            docket_response(service.resolve_docket_shared_as(tenant, &shared))
        }
        Request::Payload { claims } => {
            let mut digests: Vec<PayloadDigest> = Vec::with_capacity(claims.len());
            for claim in claims {
                match service.claims().insert_for(tenant, service.quotas(), claim) {
                    Ok((digest, _claim)) => digests.push(digest),
                    Err(err) => return fault_response(&err),
                }
            }
            Response::PayloadStored { digests }
        }
        Request::ListModels => Response::Models {
            model_ids: service.model_ids_for(tenant),
        },
        Request::Deregister { model_id } => match service.deregister_as(tenant, &model_id) {
            Ok(existed) => Response::Deregistered { model_id, existed },
            Err(err) => fault_response(&err),
        },
        Request::Stats => {
            // The anonymous tenant is the operator's view (an open judge
            // has no other identity); authenticated tenants see exactly
            // their own row — stats never leak across namespaces.
            let tenants = if tenant.is_anonymous() {
                service.stats_all()
            } else {
                vec![service.stats_for(tenant)]
            };
            Response::Stats { tenants }
        }
    }
}

/// Wire rendering of a docket resolution outcome.
fn docket_response(result: WatermarkResult<Vec<WatermarkResult<VerificationReport>>>) -> Response {
    match result {
        Ok(verdicts) => Response::Docket {
            verdicts: verdicts.into_iter().map(DocketVerdict::from_result).collect(),
        },
        Err(err) => Response::Error {
            fault: WireFault::from_error(&err),
        },
    }
}
