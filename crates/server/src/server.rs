//! The judge's side of the wire: a readiness-driven accept/read loop
//! (non-blocking sockets + `poll(2)`) feeding decoded requests into the
//! shared work-stealing pool.
//!
//! One event-loop thread owns every socket's *read* side: it polls the
//! listener and all connections, runs each connection's frame state
//! machine on readable bytes, and hands complete requests to
//! `rayon::spawn`. Responses are written by the pool workers through a
//! per-connection [`ConnWriter`] (a `try_clone`d socket behind a mutex),
//! so out-of-order completion across a connection's in-flight requests is
//! the normal case — WDTP v2 correlation ids let the client match them
//! up. Idle connections therefore cost one file descriptor and a little
//! state, not a parked thread.

use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use wdte_core::error::{WatermarkError, WatermarkResult};
use wdte_core::proto::{
    self, DocketVerdict, PayloadDigest, Request, Response, WireFault, FRAME_HEADER_BYTES,
    FRAME_PRELUDE_BYTES, NO_CORRELATION,
};
use wdte_core::{persist, DisputeService, OwnershipClaim, SharedDispute, VerificationReport};

#[cfg(not(unix))]
compile_error!("wdte-server's readiness loop is built on poll(2) and requires a unix target");

/// Minimal FFI surface over `poll(2)`. This module is the only place in
/// the workspace allowed to use `unsafe` (the crate root carries
/// `#![deny(unsafe_code)]`): the build environment is offline, so the
/// usual `libc`/`mio` crates are unavailable and the one syscall std does
/// not wrap has to be declared by hand. std itself links libc, so the
/// symbol is always present.
#[allow(unsafe_code)]
mod sys {
    use std::io;

    /// Layout-compatible mirror of C's `struct pollfd`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    #[cfg(target_os = "linux")]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = u32;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
    }

    /// Polls `fds` for up to `timeout_ms` (0 = immediate, negative =
    /// forever), returning how many entries have non-zero `revents`.
    /// Retries on `EINTR`.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is an exclusively borrowed slice of
            // `#[repr(C)]` structs matching the kernel's pollfd layout,
            // valid for the whole call, and `nfds` is its exact length;
            // the kernel only writes within the slice (the `revents`
            // fields).
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
    }

    /// Polls a single descriptor, returning whether it became ready.
    pub fn poll_one(fd: i32, events: i16, timeout_ms: i32) -> io::Result<bool> {
        let mut fds = [PollFd {
            fd,
            events,
            revents: 0,
        }];
        Ok(poll_fds(&mut fds, timeout_ms)? > 0)
    }
}

/// Poll timeout of the event loop. Bounds how quickly the loop notices a
/// shutdown request, a connection whose pipeline-cap pause should lift,
/// and idle reaping — without a self-pipe, this tick is the wake-up of
/// last resort.
const POLL_TICK_MS: i32 = 20;

/// Tuning knobs of a [`JudgeServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Cap on concurrently open connections; arrivals beyond it wait in
    /// the listener's accept queue until a slot frees (TCP backpressure).
    /// `0` means unlimited, matching the 0-disables convention of every
    /// other knob in the workspace (`max_docket(0)`, the `serve_judge`
    /// flags) — with the readiness loop an idle connection costs a file
    /// descriptor, not a thread, so unlimited is a reasonable choice on
    /// trusted networks.
    pub max_connections: usize,
    /// Receiver-side cap on one frame's payload; hostile length prefixes
    /// beyond it are refused before any allocation.
    pub max_frame_bytes: usize,
    /// Idle reaping: a connection with no in-flight requests and no bytes
    /// received for this long is closed. `None` keeps idle connections
    /// forever — only sensible on trusted networks.
    pub read_timeout: Option<Duration>,
    /// Per-response write deadline. A worker delivering a response to a
    /// peer that stops draining its socket gives up (and closes the
    /// connection) after this long, so a stalled client cannot pin pool
    /// workers indefinitely. `None` waits forever.
    pub write_timeout: Option<Duration>,
    /// Per-connection cap on decoded requests in flight at once. A
    /// connection at the cap stops being polled for reads until a
    /// response completes — pipelining backpressure, so one greedy client
    /// cannot queue unbounded work. `0` means unlimited.
    pub max_pipeline: usize,
    /// Per-request width limit scoped (via the rayon shim's virtual
    /// [`rayon::ThreadPool`] handle) around each request's processing.
    /// All requests share the one process-global work-stealing pool —
    /// sized by `serve_judge --workers` through
    /// [`rayon::ThreadPoolBuilder::build_global`] — and this limit caps
    /// how wide each request's dispute × batch-shard fan-out splits on
    /// that shared pool; `0` imposes no per-request limit (requests use
    /// the whole pool).
    pub worker_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            max_frame_bytes: proto::DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(30)),
            max_pipeline: 64,
            worker_threads: 0,
        }
    }
}

/// Cloneable remote control for a serving [`JudgeServer`]: signals the
/// event loop to stop from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Requests shutdown: the event loop exits at its next wake-up (the
    /// ~20 ms poll tick bounds the wait). A nudge
    /// connection is opened (and immediately closed) as a belt-and-braces
    /// wake-up; requests already dispatched finish on the worker pool.
    ///
    /// The nudge always targets a *loopback* address: a server bound to
    /// the unspecified address reports `0.0.0.0:port` (or `[::]:port`) as
    /// its local address, and connecting to the unspecified address is
    /// platform-dependent — on some systems it fails outright, which used
    /// to leave the pre-poll accept loop parked forever.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let ip = if self.addr.ip().is_unspecified() {
            match self.addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            }
        } else {
            self.addr.ip()
        };
        let nudge = SocketAddr::new(ip, self.addr.port());
        // Failure is fine: the poll tick wakes the loop regardless.
        let _ = TcpStream::connect_timeout(&nudge, Duration::from_millis(250));
    }
}

/// A bound, not-yet-serving judge. [`serve`](JudgeServer::serve) blocks
/// the calling thread; [`spawn`](JudgeServer::spawn) serves from a
/// background thread and returns a [`RunningServer`].
#[derive(Debug)]
pub struct JudgeServer {
    service: Arc<DisputeService>,
    listener: TcpListener,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl JudgeServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port). The
    /// service is shared: the caller can keep registering models on its
    /// own `Arc` while the server resolves claims against them.
    pub fn bind(
        addr: impl ToSocketAddrs + std::fmt::Display,
        service: Arc<DisputeService>,
        config: ServerConfig,
    ) -> WatermarkResult<Self> {
        let listener = TcpListener::bind(&addr).map_err(|err| WatermarkError::Io {
            path: addr.to_string(),
            message: err.to_string(),
        })?;
        Ok(Self {
            service,
            listener,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("a bound listener has a local address")
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr(),
        }
    }

    /// Runs the event loop until [`ServerHandle::shutdown`] is called,
    /// blocking the calling thread. Requests already handed to the worker
    /// pool at shutdown finish and their responses are still delivered
    /// (each worker holds its connection's writer alive).
    pub fn serve(self) -> WatermarkResult<()> {
        let JudgeServer {
            service,
            listener,
            config,
            stop,
        } = self;
        listener.set_nonblocking(true).map_err(|err| WatermarkError::Io {
            path: "listener".to_string(),
            message: err.to_string(),
        })?;
        let listener_fd = listener.as_raw_fd();
        let mut conns: Vec<Conn> = Vec::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let accepting = config.max_connections == 0 || conns.len() < config.max_connections;
            let mut fds = Vec::with_capacity(conns.len() + 1);
            if accepting {
                fds.push(sys::PollFd {
                    fd: listener_fd,
                    events: sys::POLLIN,
                    revents: 0,
                });
            }
            // Connections at their pipeline cap (and half-closed ones)
            // are left out of the poll set: their pending bytes stay in
            // the kernel buffer until a response completes, which is
            // exactly the backpressure the cap exists to apply.
            let mut polled = Vec::with_capacity(conns.len());
            for (index, conn) in conns.iter().enumerate() {
                if conn.read_closed || conn.paused(&config) {
                    continue;
                }
                fds.push(sys::PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events: sys::POLLIN,
                    revents: 0,
                });
                polled.push(index);
            }
            sys::poll_fds(&mut fds, POLL_TICK_MS).map_err(|err| WatermarkError::Io {
                path: "poll".to_string(),
                message: err.to_string(),
            })?;
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let offset = usize::from(accepting);
            let mut closing: Vec<usize> = Vec::new();
            for (slot, &index) in polled.iter().enumerate() {
                if fds[offset + slot].revents == 0 {
                    continue;
                }
                if !conns[index].drain(&service, &config) {
                    closing.push(index);
                }
            }
            for &index in closing.iter().rev() {
                conns.swap_remove(index);
            }
            if accepting && fds.first().is_some_and(|entry| entry.revents != 0) {
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if let Some(conn) = Conn::new(stream, &config) {
                                conns.push(conn);
                            }
                            if config.max_connections != 0 && conns.len() >= config.max_connections {
                                break;
                            }
                        }
                        Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                        Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            // Persistent accept failures (EMFILE when fds
                            // are exhausted, for instance) keep the
                            // listener readable; without a pause the loop
                            // would spin at 100% CPU exactly when the
                            // judge should be shedding load.
                            std::thread::sleep(Duration::from_millis(20));
                            break;
                        }
                    }
                }
            }
            conns.retain(|conn| {
                if conn.writer.dead.load(Ordering::Acquire) {
                    return false;
                }
                if conn.read_closed {
                    // Half-closed peer: keep the writer alive until the
                    // last in-flight response is delivered.
                    return conn.in_flight.load(Ordering::SeqCst) > 0;
                }
                if let Some(timeout) = config.read_timeout {
                    if conn.in_flight.load(Ordering::SeqCst) == 0
                        && conn.last_activity.elapsed() >= timeout
                    {
                        return false;
                    }
                }
                true
            });
        }
        Ok(())
    }

    /// Serves from a background thread, returning immediately.
    pub fn spawn(self) -> RunningServer {
        let addr = self.local_addr();
        let handle = self.handle();
        let join = std::thread::spawn(move || self.serve());
        RunningServer { addr, handle, join }
    }
}

/// A [`JudgeServer`] serving from a background thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    join: std::thread::JoinHandle<WatermarkResult<()>>,
}

impl RunningServer {
    /// The address the server is reachable on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable shutdown handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Stops the event loop and joins the serving thread.
    pub fn shutdown(self) -> WatermarkResult<()> {
        self.handle.shutdown();
        self.join.join().map_err(|_| WatermarkError::Remote {
            message: "judge server thread panicked".to_string(),
        })?
    }
}

/// The write half of a connection, shared between the event loop (error
/// replies) and every pool worker carrying one of its responses. The
/// mutex spans a whole frame so concurrent responses never interleave;
/// the socket is non-blocking, so a full send buffer parks the writer in
/// `poll(POLLOUT)` up to the configured deadline instead of forever.
#[derive(Debug)]
struct ConnWriter {
    stream: Mutex<TcpStream>,
    fd: i32,
    dead: AtomicBool,
    write_timeout: Option<Duration>,
}

impl ConnWriter {
    /// Writes one response frame; returns `false` (and marks the
    /// connection dead) if the peer is gone or the deadline expired.
    fn send(&self, correlation_id: u64, response: &Response) -> bool {
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        let frame = match proto::encode_frame(correlation_id, response) {
            Ok(frame) => frame,
            // The response itself cannot be framed (a >4 GiB payload);
            // tell the peer which request died rather than hanging it.
            Err(err) => {
                let fallback = Response::Error {
                    fault: WireFault::from_error(&err),
                };
                match proto::encode_frame(correlation_id, &fallback) {
                    Ok(frame) => frame,
                    Err(_) => {
                        self.dead.store(true, Ordering::Release);
                        return false;
                    }
                }
            }
        };
        let mut stream = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = self.write_timeout.map(|timeout| Instant::now() + timeout);
        let mut written = 0usize;
        while written < frame.len() {
            match stream.write(&frame[written..]) {
                Ok(0) => {
                    self.dead.store(true, Ordering::Release);
                    return false;
                }
                Ok(n) => written += n,
                Err(err) if err.kind() == ErrorKind::Interrupted => {}
                Err(err) if err.kind() == ErrorKind::WouldBlock => {
                    let wait_ms = match deadline {
                        Some(deadline) => {
                            let left = deadline.saturating_duration_since(Instant::now());
                            if left.is_zero() {
                                self.dead.store(true, Ordering::Release);
                                return false;
                            }
                            left.as_millis().clamp(1, 1000) as i32
                        }
                        None => 1000,
                    };
                    if sys::poll_one(self.fd, sys::POLLOUT, wait_ms).is_err() {
                        self.dead.store(true, Ordering::Release);
                        return false;
                    }
                }
                Err(_) => {
                    self.dead.store(true, Ordering::Release);
                    return false;
                }
            }
        }
        true
    }
}

/// Frame-reassembly state of one connection's read side.
enum ReadState {
    /// Collecting the 18-byte header; the magic + version prelude is
    /// validated as soon as its 6 bytes arrive, so a v1 peer (whose
    /// header is shorter) is refused with a version error instead of a
    /// confusing truncation diagnostic.
    Header {
        buf: [u8; FRAME_HEADER_BYTES],
        filled: usize,
        prelude_checked: bool,
    },
    /// Collecting `announced` payload bytes for frame `correlation_id`.
    Payload {
        correlation_id: u64,
        announced: usize,
        buf: Vec<u8>,
    },
}

impl ReadState {
    fn header() -> Self {
        ReadState::Header {
            buf: [0u8; FRAME_HEADER_BYTES],
            filled: 0,
            prelude_checked: false,
        }
    }
}

/// One accepted connection as the event loop sees it.
struct Conn {
    /// The read half (the accepted socket itself, non-blocking).
    stream: TcpStream,
    /// The shared write half (a `try_clone`d descriptor).
    writer: Arc<ConnWriter>,
    state: ReadState,
    /// Requests dispatched to the pool whose responses have not been
    /// written yet. Incremented synchronously at dispatch, decremented by
    /// a drop guard in the worker, so the pipeline cap can never leak.
    in_flight: Arc<AtomicUsize>,
    /// The peer half-closed its write side; the connection lingers only
    /// to deliver in-flight responses.
    read_closed: bool,
    last_activity: Instant,
}

impl Conn {
    /// Prepares an accepted socket for the event loop; `None` if the
    /// socket died before setup finished.
    fn new(stream: TcpStream, config: &ServerConfig) -> Option<Self> {
        stream.set_nonblocking(true).ok()?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone().ok()?;
        let fd = write_half.as_raw_fd();
        Some(Self {
            stream,
            writer: Arc::new(ConnWriter {
                stream: Mutex::new(write_half),
                fd,
                dead: AtomicBool::new(false),
                write_timeout: config.write_timeout,
            }),
            state: ReadState::header(),
            in_flight: Arc::new(AtomicUsize::new(0)),
            read_closed: false,
            last_activity: Instant::now(),
        })
    }

    /// Whether the pipeline cap forbids reading more requests for now.
    fn paused(&self, config: &ServerConfig) -> bool {
        config.max_pipeline > 0 && self.in_flight.load(Ordering::SeqCst) >= config.max_pipeline
    }

    /// Reads everything currently available, dispatching complete frames.
    /// Returns `false` when the connection must be dropped now (protocol
    /// violation or transport error); a clean half-close and the pipeline
    /// cap both return `true` and are handled by the caller's bookkeeping.
    fn drain(&mut self, service: &Arc<DisputeService>, config: &ServerConfig) -> bool {
        let mut scratch = [0u8; 16 << 10];
        loop {
            if self.paused(config) {
                return true;
            }
            match &mut self.state {
                ReadState::Header {
                    buf,
                    filled,
                    prelude_checked,
                } => match self.stream.read(&mut buf[*filled..]) {
                    Ok(0) => {
                        if *filled == 0 {
                            self.read_closed = true;
                            return true;
                        }
                        Self::send_fault(
                            &self.writer,
                            NO_CORRELATION,
                            &WatermarkError::ProtocolViolation {
                                detail: format!(
                                    "stream closed after {filled} of {FRAME_HEADER_BYTES} header bytes"
                                ),
                            },
                        );
                        return false;
                    }
                    Ok(n) => {
                        *filled += n;
                        self.last_activity = Instant::now();
                        if !*prelude_checked && *filled >= FRAME_PRELUDE_BYTES {
                            if let Err(err) = proto::check_prelude(&buf[..FRAME_PRELUDE_BYTES]) {
                                Self::send_fault(&self.writer, NO_CORRELATION, &err);
                                return false;
                            }
                            *prelude_checked = true;
                        }
                        if *filled == FRAME_HEADER_BYTES {
                            let correlation_id = u64::from_le_bytes(
                                buf[6..14].try_into().expect("header slice is 8 bytes"),
                            );
                            let announced = u32::from_le_bytes(
                                buf[14..18].try_into().expect("header slice is 4 bytes"),
                            ) as usize;
                            if announced > config.max_frame_bytes {
                                Self::send_fault(
                                    &self.writer,
                                    correlation_id,
                                    &WatermarkError::FrameTooLarge {
                                        size: announced as u64,
                                        max: config.max_frame_bytes as u64,
                                    },
                                );
                                return false;
                            }
                            // Reserve at most 64 KiB up front; the rest
                            // grows as bytes actually arrive, so a
                            // hostile prefix below the cap still cannot
                            // reserve more memory than the peer sends.
                            self.state = ReadState::Payload {
                                correlation_id,
                                announced,
                                buf: Vec::with_capacity(announced.min(64 << 10)),
                            };
                        }
                    }
                    Err(err) if err.kind() == ErrorKind::WouldBlock => return true,
                    Err(err) if err.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.writer.dead.store(true, Ordering::Release);
                        return false;
                    }
                },
                ReadState::Payload {
                    correlation_id,
                    announced,
                    buf,
                } => {
                    if buf.len() == *announced {
                        let correlation_id = *correlation_id;
                        let payload = std::mem::take(buf);
                        self.state = ReadState::header();
                        Self::dispatch(
                            service,
                            config,
                            &self.writer,
                            &self.in_flight,
                            correlation_id,
                            payload,
                        );
                        continue;
                    }
                    let want = (*announced - buf.len()).min(scratch.len());
                    match self.stream.read(&mut scratch[..want]) {
                        Ok(0) => {
                            Self::send_fault(
                                &self.writer,
                                *correlation_id,
                                &WatermarkError::ProtocolViolation {
                                    detail: format!(
                                        "stream closed after {} of {announced} payload bytes",
                                        buf.len()
                                    ),
                                },
                            );
                            return false;
                        }
                        Ok(n) => {
                            buf.extend_from_slice(&scratch[..n]);
                            self.last_activity = Instant::now();
                        }
                        Err(err) if err.kind() == ErrorKind::WouldBlock => return true,
                        Err(err) if err.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.writer.dead.store(true, Ordering::Release);
                            return false;
                        }
                    }
                }
            }
        }
    }

    /// Best-effort structured error reply for frame-level failures.
    fn send_fault(writer: &ConnWriter, correlation_id: u64, err: &WatermarkError) {
        let _ = writer.send(
            correlation_id,
            &Response::Error {
                fault: WireFault::from_error(err),
            },
        );
    }

    /// Hands one complete frame to the worker pool. A payload that does
    /// not decode as a [`Request`] is answered inline and the connection
    /// kept: framing is intact, so the next frame is readable.
    fn dispatch(
        service: &Arc<DisputeService>,
        config: &ServerConfig,
        writer: &Arc<ConnWriter>,
        in_flight: &Arc<AtomicUsize>,
        correlation_id: u64,
        payload: Vec<u8>,
    ) {
        let request = match proto::decode_payload::<Request>(&payload) {
            Ok(request) => request,
            Err(err) => {
                Self::send_fault(writer, correlation_id, &err);
                return;
            }
        };
        in_flight.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(service);
        let writer = Arc::clone(writer);
        let in_flight = Arc::clone(in_flight);
        let width = config.worker_threads;
        rayon::spawn(move || {
            /// Decrements on every exit path, including a panicking
            /// handler, so a poisoned request can never wedge its
            /// connection at the pipeline cap.
            struct Guard(Arc<AtomicUsize>);
            impl Drop for Guard {
                fn drop(&mut self) {
                    self.0.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let _guard = Guard(in_flight);
            let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if width > 0 {
                    // A scoped width override, not a thread spawn: the
                    // handle owns no threads, and the request still
                    // executes on the shared global work-stealing pool.
                    rayon::ThreadPoolBuilder::new()
                        .num_threads(width)
                        .build()
                        .expect("the rayon shim never fails to build a pool handle")
                        .install(|| handle_request(&service, request))
                } else {
                    handle_request(&service, request)
                }
            }))
            .unwrap_or_else(|_| Response::Error {
                fault: WireFault::Internal {
                    detail: "judge panicked while serving the request".to_string(),
                },
            });
            writer.send(correlation_id, &response);
        });
    }
}

/// Maps one request onto the shared service.
fn handle_request(service: &DisputeService, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong {
            protocol_version: proto::PROTOCOL_VERSION,
            format_version: persist::FORMAT_VERSION,
            models_registered: service.len() as u64,
            claims_cached: service.claims().len() as u64,
        },
        Request::RegisterModel { model_id, model } => {
            let num_trees = model.num_trees() as u64;
            let (digest, _compiled) = service.register_digested(model_id.clone(), &model);
            Response::Registered {
                model_id,
                num_trees,
                digest,
            }
        }
        Request::RegisterModelRef { model_id, digest } => {
            match service.register_by_digest(model_id.clone(), digest) {
                Some(compiled) => Response::Registered {
                    model_id,
                    num_trees: compiled.num_trees() as u64,
                    digest,
                },
                None => Response::NeedPayload {
                    digests: vec![digest],
                },
            }
        }
        Request::Resolve { model_id, claim } => match service.resolve(&model_id, &claim) {
            Ok(report) => Response::Resolved { report },
            Err(err) => Response::Error {
                fault: WireFault::from_error(&err),
            },
        },
        Request::ResolveDocket { disputes } => {
            // Full-body dockets go through the same content cache and
            // dedup path as digest dockets: duplicate claims inside one
            // docket resolve once, and their bodies become available for
            // later digest-only references.
            let shared: Vec<SharedDispute> = disputes
                .into_iter()
                .map(|dispute| {
                    let (digest, claim) = service.claims().insert(dispute.claim);
                    SharedDispute::new(dispute.model_id, digest, claim)
                })
                .collect();
            docket_response(service.resolve_docket_shared(&shared))
        }
        Request::ResolveDocketRef { bodies, disputes } => {
            // Inlined bodies are looked up request-locally *first*: a
            // digest carried in this very request must resolve even if
            // the cache is too small to hold it, otherwise a client
            // retrying after NeedPayload could loop forever.
            let mut local: HashMap<PayloadDigest, Arc<OwnershipClaim>> =
                HashMap::with_capacity(bodies.len());
            for body in bodies {
                let (digest, claim) = service.claims().insert(body);
                local.insert(digest, claim);
            }
            let mut missing: Vec<PayloadDigest> = Vec::new();
            let mut seen: HashSet<PayloadDigest> = HashSet::new();
            let mut shared: Vec<SharedDispute> = Vec::with_capacity(disputes.len());
            for dispute in disputes {
                match local
                    .get(&dispute.digest)
                    .cloned()
                    .or_else(|| service.claims().get(&dispute.digest))
                {
                    Some(claim) => {
                        shared.push(SharedDispute::new(dispute.model_id, dispute.digest, claim));
                    }
                    None => {
                        if seen.insert(dispute.digest) {
                            missing.push(dispute.digest);
                        }
                    }
                }
            }
            if !missing.is_empty() {
                return Response::NeedPayload { digests: missing };
            }
            docket_response(service.resolve_docket_shared(&shared))
        }
        Request::Payload { claims } => Response::PayloadStored {
            digests: claims.into_iter().map(|claim| service.claims().insert(claim).0).collect(),
        },
        Request::ListModels => Response::Models {
            model_ids: service.model_ids(),
        },
        Request::Deregister { model_id } => {
            let existed = service.deregister(&model_id).is_some();
            Response::Deregistered { model_id, existed }
        }
    }
}

/// Wire rendering of a docket resolution outcome.
fn docket_response(result: WatermarkResult<Vec<WatermarkResult<VerificationReport>>>) -> Response {
    match result {
        Ok(verdicts) => Response::Docket {
            verdicts: verdicts.into_iter().map(DocketVerdict::from_result).collect(),
        },
        Err(err) => Response::Error {
            fault: WireFault::from_error(&err),
        },
    }
}
