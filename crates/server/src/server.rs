//! The judge's side of the wire: a blocking TCP accept loop driving a
//! shared [`DisputeService`].

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wdte_core::error::{WatermarkError, WatermarkResult};
use wdte_core::proto::{self, DocketVerdict, Request, Response, WireFault};
use wdte_core::{persist, DisputeService};

/// Tuning knobs of a [`JudgeServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections served by dedicated handler threads at any one time.
    /// Arrivals beyond the cap are served *inline* on the accept thread —
    /// natural backpressure instead of an unbounded thread explosion.
    pub max_connections: usize,
    /// Receiver-side cap on one frame's payload; hostile length prefixes
    /// beyond it are refused before any allocation.
    pub max_frame_bytes: usize,
    /// Per-connection socket read timeout; a timeout closes the
    /// connection (idle keep-alive reaping). Defaults to two minutes:
    /// with `None`, `max_connections` idle sockets would pin every
    /// dedicated handler slot forever and permanently degrade the judge
    /// to serialized inline serving. Only set `None` on trusted networks.
    pub read_timeout: Option<Duration>,
    /// Per-request width limit scoped (via the rayon shim's virtual
    /// [`rayon::ThreadPool`] handle) around each connection's request
    /// processing. All connections share the one process-global
    /// work-stealing pool — sized by `serve_judge --workers` through
    /// [`rayon::ThreadPoolBuilder::build_global`] — and this limit caps
    /// how wide each request's dispute × batch-shard fan-out splits on
    /// that shared pool; `0` imposes no per-request limit (requests use
    /// the whole pool).
    pub worker_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_frame_bytes: proto::DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Some(Duration::from_secs(120)),
            worker_threads: 0,
        }
    }
}

/// Read timeout forced on connections served *inline* on the accept
/// thread (arrivals beyond `max_connections`). The accept thread must
/// never be parked indefinitely by one idle peer — that would wedge every
/// future accept (and shutdown) behind a single slow-loris connection —
/// so saturated-mode connections are only served while they keep frames
/// coming.
const SATURATED_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Cloneable remote control for a serving [`JudgeServer`]: signals the
/// accept loop to stop from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Requests shutdown: the accept loop exits at the next arrival. A
    /// nudge connection is opened (and immediately closed) so a loop
    /// blocked in `accept` wakes up; connections already being served
    /// finish their in-flight requests.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Failure is fine: the listener is gone, so the loop has exited.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A bound, not-yet-serving judge. [`serve`](JudgeServer::serve) blocks
/// the calling thread; [`spawn`](JudgeServer::spawn) serves from a
/// background thread and returns a [`RunningServer`].
#[derive(Debug)]
pub struct JudgeServer {
    service: Arc<DisputeService>,
    listener: TcpListener,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl JudgeServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port). The
    /// service is shared: the caller can keep registering models on its
    /// own `Arc` while the server resolves claims against them.
    pub fn bind(
        addr: impl ToSocketAddrs + std::fmt::Display,
        service: Arc<DisputeService>,
        config: ServerConfig,
    ) -> WatermarkResult<Self> {
        let listener = TcpListener::bind(&addr).map_err(|err| WatermarkError::Io {
            path: addr.to_string(),
            message: err.to_string(),
        })?;
        Ok(Self {
            service,
            listener,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("a bound listener has a local address")
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr(),
        }
    }

    /// Serves connections until [`ServerHandle::shutdown`] is called,
    /// blocking the calling thread. Up to `max_connections` connections
    /// are handled on dedicated threads; arrivals beyond that are served
    /// inline on the accept thread, which backpressures the accept queue.
    pub fn serve(self) -> WatermarkResult<()> {
        let JudgeServer {
            service,
            listener,
            config,
            stop,
        } = self;
        let active = Arc::new(AtomicUsize::new(0));
        for incoming in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = incoming else {
                // Persistent accept failures (EMFILE when fds are
                // exhausted, for instance) would otherwise busy-spin the
                // accept thread at 100% CPU exactly when the judge should
                // be shedding load.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            };
            if active.load(Ordering::SeqCst) >= config.max_connections {
                // Saturated: serve inline as backpressure, but the accept
                // thread must stay responsive — an idle peer is bounded by
                // the read timeout, an *active* peer by a one-request
                // budget (it has to reconnect, by which time a dedicated
                // slot has usually freed).
                let saturated = ServerConfig {
                    read_timeout: Some(
                        config.read_timeout.map_or(SATURATED_READ_TIMEOUT, |configured| {
                            configured.min(SATURATED_READ_TIMEOUT)
                        }),
                    ),
                    ..config.clone()
                };
                serve_connection(&service, stream, &saturated, Some(1));
                continue;
            }
            let service = Arc::clone(&service);
            let config = config.clone();
            let active = Arc::clone(&active);
            active.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || {
                /// Decrements on every exit path, including a panicking
                /// handler, so a poisoned connection can never leak a
                /// connection slot.
                struct Slot(Arc<AtomicUsize>);
                impl Drop for Slot {
                    fn drop(&mut self) {
                        self.0.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _slot = Slot(active);
                serve_connection(&service, stream, &config, None);
            });
        }
        Ok(())
    }

    /// Serves from a background thread, returning immediately.
    pub fn spawn(self) -> RunningServer {
        let addr = self.local_addr();
        let handle = self.handle();
        let join = std::thread::spawn(move || self.serve());
        RunningServer { addr, handle, join }
    }
}

/// A [`JudgeServer`] serving from a background thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    join: std::thread::JoinHandle<WatermarkResult<()>>,
}

impl RunningServer {
    /// The address the server is reachable on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable shutdown handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(self) -> WatermarkResult<()> {
        self.handle.shutdown();
        self.join.join().map_err(|_| WatermarkError::Remote {
            message: "judge server thread panicked".to_string(),
        })?
    }
}

/// Serves one connection: a loop of request frame → response frame, up to
/// `request_limit` requests (`None` = until the peer closes).
///
/// Frame-level violations (bad magic, truncation, oversized prefix) leave
/// the stream unsynchronized, so they are answered with a best-effort
/// [`Response::Error`] and the connection is closed. A payload that frames
/// correctly but does not decode as a [`Request`] is answered and the
/// connection *kept*: framing is intact, so the next frame is readable.
fn serve_connection(
    service: &DisputeService,
    stream: TcpStream,
    config: &ServerConfig,
    request_limit: Option<usize>,
) {
    let _ = stream.set_read_timeout(config.read_timeout);
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    let mut served = 0usize;
    let mut process = || loop {
        if request_limit.is_some_and(|limit| served >= limit) {
            break;
        }
        match proto::read_frame(&mut reader, config.max_frame_bytes) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                served += 1;
                let response = match proto::decode_payload::<Request>(&payload) {
                    Ok(request) => handle_request(service, request),
                    Err(err) => Response::Error {
                        fault: WireFault::from_error(&err),
                    },
                };
                if proto::write_message(reader.get_mut(), &response).is_err() {
                    break;
                }
            }
            Err(err) => {
                let _ = proto::write_message(
                    reader.get_mut(),
                    &Response::Error {
                        fault: WireFault::from_error(&err),
                    },
                );
                break;
            }
        }
    };
    if config.worker_threads > 0 {
        // A scoped width override, not a thread spawn: the handle owns no
        // threads, and every request still executes on the shared global
        // work-stealing pool, where nested fan-outs (docket → batch
        // shards → trees) compose across connections.
        rayon::ThreadPoolBuilder::new()
            .num_threads(config.worker_threads)
            .build()
            .expect("the rayon shim never fails to build a pool handle")
            .install(process);
    } else {
        process();
    }
}

/// Maps one request onto the shared service.
fn handle_request(service: &DisputeService, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong {
            protocol_version: proto::PROTOCOL_VERSION,
            format_version: persist::FORMAT_VERSION,
            models_registered: service.len() as u64,
        },
        Request::RegisterModel { model_id, model } => {
            let num_trees = model.num_trees() as u64;
            service.register(model_id.clone(), &model);
            Response::Registered { model_id, num_trees }
        }
        Request::Resolve { model_id, claim } => match service.resolve(&model_id, &claim) {
            Ok(report) => Response::Resolved { report },
            Err(err) => Response::Error {
                fault: WireFault::from_error(&err),
            },
        },
        Request::ResolveDocket { disputes } => match service.resolve_docket(&disputes) {
            Ok(verdicts) => Response::Docket {
                verdicts: verdicts.into_iter().map(DocketVerdict::from_result).collect(),
            },
            Err(err) => Response::Error {
                fault: WireFault::from_error(&err),
            },
        },
        Request::ListModels => Response::Models {
            model_ids: service.model_ids(),
        },
        Request::Deregister { model_id } => {
            let existed = service.deregister(&model_id).is_some();
            Response::Deregistered { model_id, existed }
        }
    }
}
