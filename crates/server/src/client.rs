//! The claimant's side of the wire: a typed client over one TCP
//! connection to a judge.

use serde::{Serialize, Value};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use wdte_core::error::{WatermarkError, WatermarkResult};
use wdte_core::proto::{self, Request, Response};
use wdte_core::verify::{OwnershipClaim, VerificationReport};
use wdte_core::Dispute;
use wdte_trees::RandomForest;

/// Wire encodings of the payload-heavy requests, built from *borrowed*
/// data. `Request`'s derive needs an owned enum, which would force every
/// `resolve_docket` call to deep-copy the full docket (trigger + disguise
/// datasets per claim) just to serialize it; these mirrors produce the
/// exact same [`Value`] — and therefore the exact same frame bytes — from
/// references. Parity with the derive is locked down by the
/// `borrowed_requests_encode_identically_to_the_owned_enum` test.
struct BorrowedRegisterModel<'a> {
    model_id: &'a str,
    model: &'a RandomForest,
}

struct BorrowedResolve<'a> {
    model_id: &'a str,
    claim: &'a OwnershipClaim,
}

struct BorrowedResolveDocket<'a> {
    disputes: &'a [Dispute],
}

fn variant(name: &str, fields: Vec<(String, Value)>) -> Value {
    Value::Map(vec![(name.to_string(), Value::Map(fields))])
}

impl Serialize for BorrowedRegisterModel<'_> {
    fn to_value(&self) -> Value {
        variant(
            "RegisterModel",
            vec![
                ("model_id".to_string(), Value::Str(self.model_id.to_string())),
                ("model".to_string(), self.model.to_value()),
            ],
        )
    }
}

impl Serialize for BorrowedResolve<'_> {
    fn to_value(&self) -> Value {
        variant(
            "Resolve",
            vec![
                ("model_id".to_string(), Value::Str(self.model_id.to_string())),
                ("claim".to_string(), self.claim.to_value()),
            ],
        )
    }
}

impl Serialize for BorrowedResolveDocket<'_> {
    fn to_value(&self) -> Value {
        variant(
            "ResolveDocket",
            vec![("disputes".to_string(), self.disputes.to_value())],
        )
    }
}

/// Connection and retry knobs of a [`DisputeClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Total connection attempts before giving up (at least 1). Retrying
    /// covers the common race of a client starting before the judge has
    /// bound its socket.
    pub connect_attempts: u32,
    /// Backoff between connection attempts; doubles per attempt.
    pub retry_backoff: Duration,
    /// Per-attempt connect timeout; `None` uses the OS default.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout while waiting for a response; `None` waits
    /// forever (a large docket can legitimately take a while).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout while sending a request.
    pub write_timeout: Option<Duration>,
    /// Receiver-side cap on one response frame's payload.
    pub max_frame_bytes: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_attempts: 3,
            retry_backoff: Duration::from_millis(100),
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
            max_frame_bytes: proto::DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// The judge's answer to a ping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PongInfo {
    /// Protocol version the judge speaks.
    pub protocol_version: u16,
    /// Artefact format version the judge reads and writes.
    pub format_version: u16,
    /// Number of models currently registered.
    pub models_registered: u64,
}

/// A typed client driving one connection to a
/// [`JudgeServer`](crate::JudgeServer). Requests are answered in order on
/// the same
/// connection; results are exactly what the in-process
/// [`wdte_core::DisputeService`] would have returned (bit-identical
/// reports, reconstructed typed errors).
#[derive(Debug)]
pub struct DisputeClient {
    reader: BufReader<TcpStream>,
    addr: String,
    max_frame_bytes: usize,
    /// Set after any transport-level failure (write error, read
    /// error/timeout, unparseable or missing response frame). Once the
    /// stream may hold a stale or partial response, request/response
    /// pairing is lost: a retry could consume the *previous* request's
    /// answer and silently misattribute verdicts. A broken client refuses
    /// further calls; reconnect instead.
    broken: bool,
}

impl DisputeClient {
    /// Connects with the default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> WatermarkResult<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit retry/timeout configuration.
    pub fn connect_with(
        addr: impl ToSocketAddrs + std::fmt::Display,
        config: ClientConfig,
    ) -> WatermarkResult<Self> {
        let display = addr.to_string();
        let io_err = |message: String| WatermarkError::Io {
            path: display.clone(),
            message,
        };
        let attempts = config.connect_attempts.max(1);
        let mut backoff = config.retry_backoff;
        let mut last_error = String::from("address did not resolve");
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            let resolved: Vec<SocketAddr> = match addr.to_socket_addrs() {
                Ok(addrs) => addrs.collect(),
                Err(err) => {
                    last_error = err.to_string();
                    continue;
                }
            };
            for remote in resolved {
                let connected = match config.connect_timeout {
                    Some(timeout) => TcpStream::connect_timeout(&remote, timeout),
                    None => TcpStream::connect(remote),
                };
                match connected {
                    Ok(stream) => {
                        stream
                            .set_read_timeout(config.read_timeout)
                            .map_err(|e| io_err(e.to_string()))?;
                        stream
                            .set_write_timeout(config.write_timeout)
                            .map_err(|e| io_err(e.to_string()))?;
                        let _ = stream.set_nodelay(true);
                        return Ok(Self {
                            reader: BufReader::new(stream),
                            addr: display,
                            max_frame_bytes: config.max_frame_bytes,
                            broken: false,
                        });
                    }
                    Err(err) => last_error = err.to_string(),
                }
            }
        }
        Err(io_err(format!(
            "could not connect after {attempts} attempts: {last_error}"
        )))
    }

    /// The address this client is connected to, as given to `connect`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether this connection is poisoned by an earlier transport error
    /// (see the `broken` field). A broken client must be replaced by a
    /// fresh [`DisputeClient::connect`].
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// One request/response exchange. The request may be the [`Request`]
    /// enum itself or one of the borrowed wire mirrors above.
    fn call<T: Serialize + ?Sized>(&mut self, request: &T) -> WatermarkResult<Response> {
        if self.broken {
            return Err(WatermarkError::ProtocolViolation {
                detail: format!(
                    "connection to {} is poisoned by an earlier transport error; reconnect",
                    self.addr
                ),
            });
        }
        // Encoding failures (e.g. an over-u32 frame) happen before any
        // byte reaches the wire, so they do NOT poison the connection.
        let frame = proto::encode_frame(request)?;
        let result = self.exchange(&frame);
        if result.is_err() {
            self.broken = true;
        }
        result
    }

    /// Writes an encoded frame and reads the answer; any failure here
    /// means the stream state is unknown (the caller poisons it).
    fn exchange(&mut self, frame: &[u8]) -> WatermarkResult<Response> {
        let addr = self.addr.clone();
        let stream = self.reader.get_mut();
        stream
            .write_all(frame)
            .and_then(|()| stream.flush())
            .map_err(|err| WatermarkError::Io {
                path: addr,
                message: err.to_string(),
            })?;
        match proto::read_message::<Response, _>(&mut self.reader, self.max_frame_bytes)? {
            Some(response) => Ok(response),
            None => Err(WatermarkError::ProtocolViolation {
                detail: format!("judge at {} closed the connection without answering", self.addr),
            }),
        }
    }

    /// Converts an unexpected response kind into a typed error, unwrapping
    /// wire faults first.
    fn unexpected(response: Response, wanted: &str) -> WatermarkError {
        match response {
            Response::Error { fault } => fault.into_error(),
            other => WatermarkError::ProtocolViolation {
                detail: format!("expected a {wanted} response, judge answered {other:?}"),
            },
        }
    }

    /// Liveness / version probe.
    pub fn ping(&mut self) -> WatermarkResult<PongInfo> {
        match self.call(&Request::Ping)? {
            Response::Pong {
                protocol_version,
                format_version,
                models_registered,
            } => Ok(PongInfo {
                protocol_version,
                format_version,
                models_registered,
            }),
            other => Err(Self::unexpected(other, "Pong")),
        }
    }

    /// Registers a pointer-tree model under `model_id`; the judge compiles
    /// it once. Returns the tree count the judge registered.
    pub fn register_model(
        &mut self,
        model_id: impl Into<String>,
        model: &RandomForest,
    ) -> WatermarkResult<usize> {
        let model_id = model_id.into();
        let request = BorrowedRegisterModel {
            model_id: &model_id,
            model,
        };
        match self.call(&request)? {
            Response::Registered { num_trees, .. } => Ok(num_trees as usize),
            other => Err(Self::unexpected(other, "Registered")),
        }
    }

    /// Resolves one claim against a registered model.
    pub fn resolve(
        &mut self,
        model_id: impl Into<String>,
        claim: &OwnershipClaim,
    ) -> WatermarkResult<VerificationReport> {
        let model_id = model_id.into();
        let request = BorrowedResolve {
            model_id: &model_id,
            claim,
        };
        match self.call(&request)? {
            Response::Resolved { report } => Ok(report),
            other => Err(Self::unexpected(other, "Resolved")),
        }
    }

    /// Resolves a whole docket; one verdict per dispute in input order,
    /// exactly as `DisputeService::resolve_many` returns them in process.
    pub fn resolve_docket(
        &mut self,
        disputes: &[Dispute],
    ) -> WatermarkResult<Vec<WatermarkResult<VerificationReport>>> {
        let request = BorrowedResolveDocket { disputes };
        match self.call(&request)? {
            Response::Docket { verdicts } => {
                Ok(verdicts.into_iter().map(proto::DocketVerdict::into_result).collect())
            }
            other => Err(Self::unexpected(other, "Docket")),
        }
    }

    /// Sorted ids of every model registered with the judge.
    pub fn list_models(&mut self) -> WatermarkResult<Vec<String>> {
        match self.call(&Request::ListModels)? {
            Response::Models { model_ids } => Ok(model_ids),
            other => Err(Self::unexpected(other, "Models")),
        }
    }

    /// Removes a model from the judge's registry; `true` if it existed.
    pub fn deregister(&mut self, model_id: impl Into<String>) -> WatermarkResult<bool> {
        let request = Request::Deregister {
            model_id: model_id.into(),
        };
        match self.call(&request)? {
            Response::Deregistered { existed, .. } => Ok(existed),
            other => Err(Self::unexpected(other, "Deregistered")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_core::Signature;
    use wdte_data::SyntheticSpec;
    use wdte_trees::ForestParams;

    /// The borrowed wire mirrors must stay byte-identical to the derived
    /// `Request` encoding: the server decodes the frames as `Request`, so
    /// any divergence here is a silent protocol fork.
    #[test]
    fn borrowed_requests_encode_identically_to_the_owned_enum() {
        let mut rng = SmallRng::seed_from_u64(17);
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2).generate(&mut rng);
        let (trigger, test) = dataset.split_train_test(0.2, &mut rng);
        let model = RandomForest::fit(&dataset, &ForestParams::with_trees(3), &mut rng);
        let claim = OwnershipClaim::new(Signature::random(3, 0.5, &mut rng), trigger, test);
        let disputes = vec![
            Dispute::new("m", claim.clone()),
            Dispute::new("other", claim.clone()),
        ];

        let frame = |value: &dyn Serialize| proto::encode_frame(value).unwrap();
        assert_eq!(
            frame(&BorrowedRegisterModel {
                model_id: "m",
                model: &model
            }),
            frame(&Request::RegisterModel {
                model_id: "m".into(),
                model: model.clone()
            })
        );
        assert_eq!(
            frame(&BorrowedResolve {
                model_id: "m",
                claim: &claim
            }),
            frame(&Request::Resolve {
                model_id: "m".into(),
                claim: claim.clone()
            })
        );
        assert_eq!(
            frame(&BorrowedResolveDocket { disputes: &disputes }),
            frame(&Request::ResolveDocket { disputes })
        );
    }
}
