//! The claimant's side of the wire: a typed client over one TCP
//! connection to a judge, with WDTP pipelining, content-addressed claim
//! upload and optional per-tenant frame authentication.
//!
//! [`DisputeClient::send_docket`] / [`DisputeClient::recv_docket`] split
//! the request and response halves of a docket so several dockets can be
//! in flight at once; responses are matched back by correlation id, and
//! out-of-order arrivals for other in-flight dockets are stashed until
//! their ticket is redeemed. Claim bodies travel once per connection:
//! later dockets reference them by content digest, and a judge that has
//! evicted a body answers `NeedPayload`, which the client recovers from
//! transparently by resending the docket with the missing bodies inlined.

use serde::{Serialize, Value};
use std::collections::{HashMap, HashSet};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;
use wdte_core::error::{WatermarkError, WatermarkResult};
use wdte_core::proto::{self, DisputeRef, PayloadDigest, Request, Response, NO_CORRELATION};
use wdte_core::verify::{OwnershipClaim, VerificationReport};
use wdte_core::{Dispute, TenantId, TenantStatsEntry};
use wdte_trees::RandomForest;

/// Credentials for an authenticated connection: the tenant this client
/// acts as and the shared secret enrolled for it in the judge's key file.
/// Every frame the client sends is stamped with the tenant id, a
/// strictly increasing per-connection sequence and an HMAC-SHA-256 tag.
#[derive(Debug, Clone)]
pub struct ClientAuth {
    tenant: TenantId,
    secret: Vec<u8>,
}

impl ClientAuth {
    /// Credentials for `tenant` with `secret` (the raw bytes after the
    /// `:` on the tenant's key-file line).
    pub fn new(tenant: TenantId, secret: impl Into<Vec<u8>>) -> Self {
        Self {
            tenant,
            secret: secret.into(),
        }
    }

    /// The tenant these credentials act as.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }
}

/// Wire encodings of the payload-heavy requests, built from *borrowed*
/// data. `Request`'s derive needs an owned enum, which would force every
/// docket call to deep-copy the full docket (trigger + disguise datasets
/// per claim) just to serialize it; these mirrors produce the exact same
/// [`Value`] — and therefore the exact same frame bytes — from
/// references. Parity with the derive is locked down by the
/// `borrowed_requests_encode_identically_to_the_owned_enum` test.
struct BorrowedRegisterModel<'a> {
    model_id: &'a str,
    model: &'a RandomForest,
}

struct BorrowedResolve<'a> {
    model_id: &'a str,
    claim: &'a OwnershipClaim,
}

struct BorrowedResolveDocketRef<'a> {
    bodies: &'a [&'a OwnershipClaim],
    disputes: &'a [DisputeRef],
}

fn variant(name: &str, fields: Vec<(String, Value)>) -> Value {
    Value::Map(vec![(name.to_string(), Value::Map(fields))])
}

impl Serialize for BorrowedRegisterModel<'_> {
    fn to_value(&self) -> Value {
        variant(
            "RegisterModel",
            vec![
                ("model_id".to_string(), Value::Str(self.model_id.to_string())),
                ("model".to_string(), self.model.to_value()),
            ],
        )
    }
}

impl Serialize for BorrowedResolve<'_> {
    fn to_value(&self) -> Value {
        variant(
            "Resolve",
            vec![
                ("model_id".to_string(), Value::Str(self.model_id.to_string())),
                ("claim".to_string(), self.claim.to_value()),
            ],
        )
    }
}

impl Serialize for BorrowedResolveDocketRef<'_> {
    fn to_value(&self) -> Value {
        variant(
            "ResolveDocketRef",
            vec![
                (
                    "bodies".to_string(),
                    Value::Seq(self.bodies.iter().map(|claim| claim.to_value()).collect()),
                ),
                ("disputes".to_string(), self.disputes.to_value()),
            ],
        )
    }
}

/// Connection and retry knobs of a [`DisputeClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Total connection attempts before giving up (at least 1). Retrying
    /// covers the common race of a client starting before the judge has
    /// bound its socket. A connection that is established but cannot be
    /// configured (socket option failures) counts as one failed attempt,
    /// not a hard error.
    pub connect_attempts: u32,
    /// Backoff between connection attempts; doubles per attempt, capped
    /// at [`max_retry_backoff`](Self::max_retry_backoff).
    pub retry_backoff: Duration,
    /// Upper bound on the exponential backoff between attempts, so large
    /// `connect_attempts` values retry steadily instead of sleeping for
    /// minutes.
    pub max_retry_backoff: Duration,
    /// Per-attempt connect timeout; `None` uses the OS default.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout while waiting for a response; `None` waits
    /// forever (a large docket can legitimately take a while).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout while sending a request.
    pub write_timeout: Option<Duration>,
    /// Receiver-side cap on one response frame's payload.
    pub max_frame_bytes: usize,
    /// Frame-authentication credentials. `None` (the default) sends
    /// anonymous frames, which an open judge accepts and a keyed judge
    /// refuses with `AuthFailed`.
    pub auth: Option<ClientAuth>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_attempts: 3,
            retry_backoff: Duration::from_millis(100),
            max_retry_backoff: Duration::from_secs(5),
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
            max_frame_bytes: proto::DEFAULT_MAX_FRAME_BYTES,
            auth: None,
        }
    }
}

/// The judge's answer to a ping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PongInfo {
    /// Protocol version the judge speaks.
    pub protocol_version: u16,
    /// Artefact format version the judge reads and writes.
    pub format_version: u16,
    /// Number of models currently registered.
    pub models_registered: u64,
    /// Number of claim bodies in the judge's content cache.
    pub claims_cached: u64,
}

/// Receipt for a docket sent with [`DisputeClient::send_docket`] and not
/// yet received. Redeem it — exactly once — with
/// [`DisputeClient::recv_docket`]; tickets of one client are not valid on
/// another.
#[derive(Debug)]
pub struct DocketTicket {
    correlation_id: u64,
}

impl DocketTicket {
    /// The wire correlation id this ticket's verdicts will arrive under.
    pub fn correlation_id(&self) -> u64 {
        self.correlation_id
    }
}

/// Everything needed to retry one in-flight docket if the judge answers
/// `NeedPayload`: the dispute list by digest, plus a retained copy of
/// every distinct claim body so the retry can always inline what the
/// judge is missing (even bodies the judge had cached at send time and
/// evicted since).
#[derive(Debug)]
struct PendingDocket {
    model_ids: Vec<String>,
    digests: Vec<PayloadDigest>,
    bodies: HashMap<PayloadDigest, Arc<OwnershipClaim>>,
    retries: u8,
}

/// `NeedPayload` recovery attempts per docket before giving up. The
/// second retry inlines *every* body of the docket, which a correct judge
/// answers from the request-local bodies alone — a third demand means the
/// peer is not honouring the protocol.
const MAX_NEED_PAYLOAD_RETRIES: u8 = 3;

/// Outcome of redeeming a docket ticket with
/// [`DisputeClient::recv_docket_outcome`], the variant of
/// [`DisputeClient::recv_docket`] that does **not** treat an
/// unrecoverable `NeedPayload` as a protocol violation. A fleet router
/// sends dockets whose claim bodies it never held (the end client keeps
/// them), so "the judge wants bodies I cannot supply" is an expected
/// answer it relays upstream rather than an error.
#[derive(Debug)]
pub enum DocketOutcome {
    /// The docket resolved: one verdict per dispute, in input order.
    Verdicts(Vec<WatermarkResult<VerificationReport>>),
    /// The judge is missing claim bodies this client could not inline
    /// from its retained copies. The caller owns recovery: upload the
    /// named bodies (or relay the demand to whoever holds them) and send
    /// a fresh docket. The ticket is consumed either way.
    NeedPayload(Vec<PayloadDigest>),
}

/// A typed client driving one connection to a
/// [`JudgeServer`](crate::JudgeServer). Results are exactly what the
/// in-process [`wdte_core::DisputeService`] would have returned
/// (bit-identical reports, reconstructed typed errors), regardless of how
/// many dockets are in flight or in what order the judge completes them.
#[derive(Debug)]
pub struct DisputeClient {
    reader: BufReader<TcpStream>,
    addr: String,
    max_frame_bytes: usize,
    /// Set after any transport-level failure (write error, read
    /// error/timeout, unparseable response frame, unknown correlation
    /// id). Once the stream state is unknown, request/response pairing is
    /// lost and a retry could silently misattribute verdicts; a broken
    /// client refuses further calls — reconnect instead.
    broken: bool,
    /// Next correlation id to stamp on a request frame (0 is reserved).
    next_correlation: u64,
    /// Correlation ids sent and not yet answered; a response outside this
    /// set poisons the connection.
    outstanding: HashSet<u64>,
    /// Responses that arrived while waiting for a different correlation
    /// id, parked until their ticket is redeemed.
    stash: HashMap<u64, Response>,
    /// In-flight dockets by correlation id.
    pending: HashMap<u64, PendingDocket>,
    /// Digests of claim bodies this connection has already uploaded; such
    /// claims travel as digest-only references until the judge reports an
    /// eviction.
    sent_claims: HashSet<PayloadDigest>,
    /// Digests of models this connection has already uploaded.
    sent_models: HashSet<PayloadDigest>,
    /// Frame-authentication credentials, if this client acts as a tenant.
    auth: Option<ClientAuth>,
    /// Next frame sequence for authenticated sends. Starts at 1 (a fresh
    /// server connection accepts anything strictly above 0) and
    /// increments per frame, so the judge's replay check always passes
    /// for honest traffic.
    next_sequence: u64,
}

impl DisputeClient {
    /// Connects with the default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> WatermarkResult<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit retry/timeout configuration.
    pub fn connect_with(
        addr: impl ToSocketAddrs + std::fmt::Display,
        config: ClientConfig,
    ) -> WatermarkResult<Self> {
        let display = addr.to_string();
        let attempts = config.connect_attempts.max(1);
        let mut backoff = config.retry_backoff.min(config.max_retry_backoff);
        let mut last_error = String::from("address did not resolve");
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2).min(config.max_retry_backoff);
            }
            let resolved: Vec<SocketAddr> = match addr.to_socket_addrs() {
                Ok(addrs) => addrs.collect(),
                Err(err) => {
                    last_error = err.to_string();
                    continue;
                }
            };
            for remote in resolved {
                let connected = match config.connect_timeout {
                    Some(timeout) => TcpStream::connect_timeout(&remote, timeout),
                    None => TcpStream::connect(remote),
                };
                match connected {
                    Ok(stream) => {
                        // A socket that connects but cannot be configured
                        // counts as one failed attempt — it must not
                        // abort the whole retry loop, which exists
                        // precisely to ride out transient conditions.
                        let configured = stream
                            .set_read_timeout(config.read_timeout)
                            .and_then(|()| stream.set_write_timeout(config.write_timeout));
                        if let Err(err) = configured {
                            last_error = err.to_string();
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        return Ok(Self {
                            reader: BufReader::new(stream),
                            addr: display,
                            max_frame_bytes: config.max_frame_bytes,
                            broken: false,
                            next_correlation: 1,
                            outstanding: HashSet::new(),
                            stash: HashMap::new(),
                            pending: HashMap::new(),
                            sent_claims: HashSet::new(),
                            sent_models: HashSet::new(),
                            auth: config.auth.clone(),
                            next_sequence: 1,
                        });
                    }
                    Err(err) => last_error = err.to_string(),
                }
            }
        }
        Err(WatermarkError::Io {
            path: display,
            message: format!("could not connect after {attempts} attempts: {last_error}"),
        })
    }

    /// Connects with default configuration plus authentication
    /// credentials.
    pub fn connect_authenticated(
        addr: impl ToSocketAddrs + std::fmt::Display,
        auth: ClientAuth,
    ) -> WatermarkResult<Self> {
        let config = ClientConfig {
            auth: Some(auth),
            ..ClientConfig::default()
        };
        Self::connect_with(addr, config)
    }

    /// The address this client is connected to, as given to `connect`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The tenant this client authenticates as, if any.
    pub fn tenant(&self) -> Option<&TenantId> {
        self.auth.as_ref().map(ClientAuth::tenant)
    }

    /// Encodes one request frame, stamping auth fields (tenant, sequence,
    /// tag) when credentials are configured. The sequence is burned even
    /// if the frame is never written — the judge only requires strictly
    /// increasing sequences, so gaps are harmless. An associated fn over
    /// the two fields it needs, so callers holding other `self` borrows
    /// (the pending-docket map) can still encode.
    fn encode_with<T: Serialize + ?Sized>(
        auth: &Option<ClientAuth>,
        next_sequence: &mut u64,
        correlation_id: u64,
        request: &T,
    ) -> WatermarkResult<Vec<u8>> {
        match auth {
            None => proto::encode_frame(correlation_id, request),
            Some(auth) => {
                let sequence = *next_sequence;
                *next_sequence += 1;
                proto::encode_frame_auth(correlation_id, request, &auth.tenant, sequence, &auth.secret)
            }
        }
    }

    /// [`encode_with`](Self::encode_with) over `self`'s own auth state.
    fn encode_request<T: Serialize + ?Sized>(
        &mut self,
        correlation_id: u64,
        request: &T,
    ) -> WatermarkResult<Vec<u8>> {
        Self::encode_with(&self.auth, &mut self.next_sequence, correlation_id, request)
    }

    /// Whether this connection is poisoned by an earlier transport error
    /// (see the `broken` field). A broken client must be replaced by a
    /// fresh [`DisputeClient::connect`].
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Number of dockets sent and not yet received.
    pub fn pending_dockets(&self) -> usize {
        self.pending.len()
    }

    fn ensure_usable(&self) -> WatermarkResult<()> {
        if self.broken {
            return Err(WatermarkError::ProtocolViolation {
                detail: format!(
                    "connection to {} is poisoned by an earlier transport error; reconnect",
                    self.addr
                ),
            });
        }
        Ok(())
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_correlation;
        self.next_correlation = self.next_correlation.wrapping_add(1);
        if self.next_correlation == NO_CORRELATION {
            self.next_correlation = 1;
        }
        id
    }

    /// Writes one already-encoded frame; poisons the connection on any
    /// transport failure.
    fn write_frame(&mut self, frame: &[u8]) -> WatermarkResult<()> {
        let result = {
            let stream = self.reader.get_mut();
            stream.write_all(frame).and_then(|()| stream.flush())
        };
        result.map_err(|err| {
            self.broken = true;
            WatermarkError::Io {
                path: self.addr.clone(),
                message: err.to_string(),
            }
        })
    }

    /// Reads responses until the one for `correlation_id` arrives,
    /// stashing responses for other in-flight requests. An id that was
    /// never sent — including the reserved 0 the judge uses for
    /// frame-level errors — poisons the connection.
    fn read_until(&mut self, correlation_id: u64) -> WatermarkResult<Response> {
        if let Some(response) = self.stash.remove(&correlation_id) {
            return Ok(response);
        }
        loop {
            let received = proto::read_message::<Response, _>(&mut self.reader, self.max_frame_bytes);
            let (corr, response) = match received {
                Ok(Some(pair)) => pair,
                Ok(None) => {
                    self.broken = true;
                    return Err(WatermarkError::ProtocolViolation {
                        detail: format!(
                            "judge at {} closed the connection without answering",
                            self.addr
                        ),
                    });
                }
                Err(err) => {
                    self.broken = true;
                    return Err(err);
                }
            };
            if corr == correlation_id {
                return Ok(response);
            }
            if corr == NO_CORRELATION {
                // A frame-level fault: the judge could not attribute the
                // failure to any request and is about to close.
                self.broken = true;
                return Err(match response {
                    Response::Error { fault } => fault.into_error(),
                    other => WatermarkError::ProtocolViolation {
                        detail: format!("judge sent an unsolicited {other:?}"),
                    },
                });
            }
            if self.outstanding.contains(&corr) {
                self.stash.insert(corr, response);
                continue;
            }
            self.broken = true;
            return Err(WatermarkError::ProtocolViolation {
                detail: format!(
                    "judge at {} answered correlation id {corr}, which this client never sent",
                    self.addr
                ),
            });
        }
    }

    /// One sequential request/response exchange. The request may be the
    /// [`Request`] enum itself or one of the borrowed wire mirrors above.
    /// Dockets in flight are serviced (stashed) while waiting.
    fn call<T: Serialize + ?Sized>(&mut self, request: &T) -> WatermarkResult<Response> {
        self.ensure_usable()?;
        let correlation_id = self.next_id();
        // Encoding failures (e.g. an over-u32 frame) happen before any
        // byte reaches the wire, so they do NOT poison the connection.
        let frame = self.encode_request(correlation_id, request)?;
        self.outstanding.insert(correlation_id);
        let result = self.write_frame(&frame).and_then(|()| self.read_until(correlation_id));
        self.outstanding.remove(&correlation_id);
        result
    }

    /// Converts an unexpected response kind into a typed error, unwrapping
    /// wire faults first.
    fn unexpected(response: Response, wanted: &str) -> WatermarkError {
        match response {
            Response::Error { fault } => fault.into_error(),
            other => WatermarkError::ProtocolViolation {
                detail: format!("expected a {wanted} response, judge answered {other:?}"),
            },
        }
    }

    /// Liveness / version probe.
    pub fn ping(&mut self) -> WatermarkResult<PongInfo> {
        match self.call(&Request::Ping)? {
            Response::Pong {
                protocol_version,
                format_version,
                models_registered,
                claims_cached,
            } => Ok(PongInfo {
                protocol_version,
                format_version,
                models_registered,
                claims_cached,
            }),
            other => Err(Self::unexpected(other, "Pong")),
        }
    }

    /// Registers a pointer-tree model under `model_id`; the judge compiles
    /// it once. Returns the tree count the judge registered.
    ///
    /// Models are content-addressed: a model this connection has already
    /// uploaded is registered by digest alone (no re-upload), falling back
    /// to the full upload if the judge no longer holds it. The judge's
    /// digest echo is cross-checked against the locally computed digest,
    /// so a hash-algorithm divergence between client and judge surfaces as
    /// a typed error instead of silent cache misses.
    pub fn register_model(
        &mut self,
        model_id: impl Into<String>,
        model: &RandomForest,
    ) -> WatermarkResult<usize> {
        let model_id = model_id.into();
        let digest = PayloadDigest::of_model(model);
        if self.sent_models.contains(&digest) {
            match self.call(&Request::RegisterModelRef {
                model_id: model_id.clone(),
                digest,
            })? {
                Response::Registered {
                    num_trees,
                    digest: echo,
                    ..
                } => {
                    return if echo == digest {
                        Ok(num_trees as usize)
                    } else {
                        Err(WatermarkError::ProtocolViolation {
                            detail: format!(
                                "judge registered digest {echo} for a reference to {digest}"
                            ),
                        })
                    };
                }
                Response::NeedPayload { .. } => {
                    // The judge dropped the model since our upload; fall
                    // back to sending it in full.
                    self.sent_models.remove(&digest);
                }
                other => return Err(Self::unexpected(other, "Registered")),
            }
        }
        let request = BorrowedRegisterModel {
            model_id: &model_id,
            model,
        };
        match self.call(&request)? {
            Response::Registered {
                num_trees,
                digest: echo,
                ..
            } => {
                if echo != digest {
                    return Err(WatermarkError::ProtocolViolation {
                        detail: format!(
                            "judge computed model digest {echo} where this client computed \
                             {digest}; digest algorithms are out of sync"
                        ),
                    });
                }
                self.sent_models.insert(digest);
                Ok(num_trees as usize)
            }
            other => Err(Self::unexpected(other, "Registered")),
        }
    }

    /// Resolves one claim against a registered model.
    pub fn resolve(
        &mut self,
        model_id: impl Into<String>,
        claim: &OwnershipClaim,
    ) -> WatermarkResult<VerificationReport> {
        let model_id = model_id.into();
        let request = BorrowedResolve {
            model_id: &model_id,
            claim,
        };
        match self.call(&request)? {
            Response::Resolved { report } => Ok(report),
            other => Err(Self::unexpected(other, "Resolved")),
        }
    }

    /// Sends a docket without waiting for its verdicts, returning a
    /// ticket to redeem with [`recv_docket`](Self::recv_docket). Any
    /// number of dockets (and other requests) may be in flight at once;
    /// the judge answers each as it completes.
    ///
    /// Claims are deduplicated by content digest: bodies the judge has
    /// not seen on this connection are inlined, everything else travels
    /// as an 16-byte digest reference.
    pub fn send_docket(&mut self, disputes: &[Dispute]) -> WatermarkResult<DocketTicket> {
        self.ensure_usable()?;
        let correlation_id = self.next_id();
        let mut model_ids = Vec::with_capacity(disputes.len());
        let mut digests = Vec::with_capacity(disputes.len());
        let mut bodies: HashMap<PayloadDigest, Arc<OwnershipClaim>> = HashMap::new();
        let mut refs = Vec::with_capacity(disputes.len());
        let mut inline: Vec<&OwnershipClaim> = Vec::new();
        let mut inline_digests: HashSet<PayloadDigest> = HashSet::new();
        for dispute in disputes {
            let digest = PayloadDigest::of_claim(&dispute.claim);
            if !self.sent_claims.contains(&digest) && inline_digests.insert(digest) {
                inline.push(&dispute.claim);
            }
            bodies.entry(digest).or_insert_with(|| Arc::new(dispute.claim.clone()));
            refs.push(DisputeRef::new(dispute.model_id.clone(), digest));
            model_ids.push(dispute.model_id.clone());
            digests.push(digest);
        }
        let frame = self.encode_request(
            correlation_id,
            &BorrowedResolveDocketRef {
                bodies: &inline,
                disputes: &refs,
            },
        )?;
        self.write_frame(&frame)?;
        self.sent_claims.extend(inline_digests);
        self.outstanding.insert(correlation_id);
        self.pending.insert(
            correlation_id,
            PendingDocket {
                model_ids,
                digests,
                bodies,
                retries: 0,
            },
        );
        Ok(DocketTicket { correlation_id })
    }

    /// [`send_docket`](Self::send_docket) from pre-digested parts: the
    /// dispute list is given as digest references and the claim bodies as
    /// a shared digest-addressed map, so a router fanning one docket out
    /// to several backends shares each body across shards instead of
    /// deep-copying it per backend. Bodies the judge has not seen on this
    /// connection are inlined (first-reference order); everything else
    /// travels digest-only. A referenced digest absent from `bodies` is
    /// sent as a bare reference — if the judge does not hold it either,
    /// the demand surfaces via
    /// [`recv_docket_outcome`](Self::recv_docket_outcome).
    pub fn send_docket_ref(
        &mut self,
        bodies: &HashMap<PayloadDigest, Arc<OwnershipClaim>>,
        disputes: &[DisputeRef],
    ) -> WatermarkResult<DocketTicket> {
        self.ensure_usable()?;
        let correlation_id = self.next_id();
        let mut model_ids = Vec::with_capacity(disputes.len());
        let mut digests = Vec::with_capacity(disputes.len());
        let mut retained: HashMap<PayloadDigest, Arc<OwnershipClaim>> = HashMap::new();
        let mut inline: Vec<&OwnershipClaim> = Vec::new();
        let mut inline_digests: HashSet<PayloadDigest> = HashSet::new();
        for dispute in disputes {
            let digest = dispute.digest;
            if let Some(body) = bodies.get(&digest) {
                if !self.sent_claims.contains(&digest) && inline_digests.insert(digest) {
                    inline.push(body.as_ref());
                }
                retained.entry(digest).or_insert_with(|| Arc::clone(body));
            }
            model_ids.push(dispute.model_id.clone());
            digests.push(digest);
        }
        let frame = self.encode_request(
            correlation_id,
            &BorrowedResolveDocketRef {
                bodies: &inline,
                disputes,
            },
        )?;
        self.write_frame(&frame)?;
        self.sent_claims.extend(inline_digests);
        self.outstanding.insert(correlation_id);
        self.pending.insert(
            correlation_id,
            PendingDocket {
                model_ids,
                digests,
                bodies: retained,
                retries: 0,
            },
        );
        Ok(DocketTicket { correlation_id })
    }

    /// One sequential request/response exchange with an arbitrary
    /// [`Request`], for callers that speak the protocol directly — the
    /// fleet router forwards single-model requests to the homed backend
    /// this way. In-flight docket responses are stashed while waiting,
    /// exactly as for the typed methods.
    pub fn raw_request(&mut self, request: &Request) -> WatermarkResult<Response> {
        self.call(request)
    }

    /// Waits for the verdicts of one in-flight docket: one verdict per
    /// dispute in input order, exactly as `DisputeService::resolve_many`
    /// returns them in process. Responses for *other* in-flight tickets
    /// that arrive first are stashed, so tickets may be redeemed in any
    /// order. `NeedPayload` answers (the judge evicted a referenced claim
    /// body) are recovered transparently by resending the docket with the
    /// missing bodies inlined.
    pub fn recv_docket(
        &mut self,
        ticket: DocketTicket,
    ) -> WatermarkResult<Vec<WatermarkResult<VerificationReport>>> {
        match self.recv_docket_inner(ticket, false)? {
            DocketOutcome::Verdicts(verdicts) => Ok(verdicts),
            // With `surface` off the inner loop recovers or errors; it
            // never hands the demand back.
            DocketOutcome::NeedPayload(_) => Err(WatermarkError::ProtocolViolation {
                detail: "recv_docket surfaced a NeedPayload it should have recovered".to_string(),
            }),
        }
    }

    /// [`recv_docket`](Self::recv_docket) for callers that do not hold
    /// every claim body themselves — a fleet router forwarding dockets
    /// whose bodies live with the end client. Demands this client can
    /// satisfy from its retained copies are still recovered
    /// transparently; a demand naming *any* body it cannot supply is
    /// returned as [`DocketOutcome::NeedPayload`] (the full demanded
    /// list, so the upstream holder can inline everything in one retry).
    /// The ticket is consumed in every case.
    pub fn recv_docket_outcome(&mut self, ticket: DocketTicket) -> WatermarkResult<DocketOutcome> {
        self.recv_docket_inner(ticket, true)
    }

    /// The shared receive loop behind [`recv_docket`](Self::recv_docket)
    /// and [`recv_docket_outcome`](Self::recv_docket_outcome). `surface`
    /// selects what happens when the judge demands a body the pending
    /// docket does not retain: hand the demand back (`true`) or treat it
    /// as a protocol violation (`false`).
    fn recv_docket_inner(
        &mut self,
        ticket: DocketTicket,
        surface: bool,
    ) -> WatermarkResult<DocketOutcome> {
        let correlation_id = ticket.correlation_id;
        if !self.pending.contains_key(&correlation_id) {
            return Err(WatermarkError::ProtocolViolation {
                detail: format!("docket ticket {correlation_id} is unknown to this client"),
            });
        }
        self.ensure_usable().inspect_err(|_| self.finish(correlation_id))?;
        loop {
            let response = match self.read_until(correlation_id) {
                Ok(response) => response,
                Err(err) => {
                    self.finish(correlation_id);
                    return Err(err);
                }
            };
            match response {
                Response::Docket { verdicts } => {
                    self.finish(correlation_id);
                    return Ok(DocketOutcome::Verdicts(
                        verdicts.into_iter().map(proto::DocketVerdict::into_result).collect(),
                    ));
                }
                Response::NeedPayload { digests } => {
                    // Those bodies are gone from the judge's cache; stop
                    // referencing them digest-only in future dockets too.
                    for digest in &digests {
                        self.sent_claims.remove(digest);
                    }
                    if surface {
                        let entry = self
                            .pending
                            .get(&correlation_id)
                            .expect("the pending entry was checked above");
                        if digests.iter().any(|digest| !entry.bodies.contains_key(digest)) {
                            self.finish(correlation_id);
                            return Ok(DocketOutcome::NeedPayload(digests));
                        }
                    }
                    let frame = match self.build_resend(correlation_id, &digests) {
                        Ok(frame) => frame,
                        Err(err) => {
                            self.finish(correlation_id);
                            return Err(err);
                        }
                    };
                    if let Err(err) = self.write_frame(&frame) {
                        self.finish(correlation_id);
                        return Err(err);
                    }
                }
                Response::Error { fault } => {
                    self.finish(correlation_id);
                    return Err(fault.into_error());
                }
                other => {
                    self.finish(correlation_id);
                    return Err(Self::unexpected(other, "Docket"));
                }
            }
        }
    }

    /// Sends `dockets` back-to-back, then collects every verdict set:
    /// the wire stays busy while the judge resolves, instead of one
    /// round-trip per docket. Verdicts are returned per docket, in input
    /// order, bit-identical to resolving each docket sequentially.
    pub fn pipeline_dockets<D: AsRef<[Dispute]>>(
        &mut self,
        dockets: &[D],
    ) -> WatermarkResult<Vec<Vec<WatermarkResult<VerificationReport>>>> {
        let tickets: Vec<DocketTicket> = dockets
            .iter()
            .map(|docket| self.send_docket(docket.as_ref()))
            .collect::<WatermarkResult<_>>()?;
        tickets.into_iter().map(|ticket| self.recv_docket(ticket)).collect()
    }

    /// Resolves a whole docket synchronously; one verdict per dispute in
    /// input order. Equivalent to [`send_docket`](Self::send_docket)
    /// immediately followed by [`recv_docket`](Self::recv_docket).
    pub fn resolve_docket(
        &mut self,
        disputes: &[Dispute],
    ) -> WatermarkResult<Vec<WatermarkResult<VerificationReport>>> {
        let ticket = self.send_docket(disputes)?;
        self.recv_docket(ticket)
    }

    /// Sorted ids of every model registered with the judge.
    pub fn list_models(&mut self) -> WatermarkResult<Vec<String>> {
        match self.call(&Request::ListModels)? {
            Response::Models { model_ids } => Ok(model_ids),
            other => Err(Self::unexpected(other, "Models")),
        }
    }

    /// Removes a model from the judge's registry; `true` if it existed.
    pub fn deregister(&mut self, model_id: impl Into<String>) -> WatermarkResult<bool> {
        let request = Request::Deregister {
            model_id: model_id.into(),
        };
        match self.call(&request)? {
            Response::Deregistered { existed, .. } => Ok(existed),
            other => Err(Self::unexpected(other, "Deregistered")),
        }
    }

    /// Drops every record of one in-flight docket.
    fn finish(&mut self, correlation_id: u64) {
        self.pending.remove(&correlation_id);
        self.outstanding.remove(&correlation_id);
        self.stash.remove(&correlation_id);
    }

    /// Builds the retry frame for a `NeedPayload` answer. The first retry
    /// inlines exactly the demanded bodies; the second inlines every body
    /// of the docket (which a correct judge answers from the request
    /// alone, whatever its cache does); a third demand is a protocol
    /// violation.
    fn build_resend(
        &mut self,
        correlation_id: u64,
        missing: &[PayloadDigest],
    ) -> WatermarkResult<Vec<u8>> {
        let entry = self
            .pending
            .get_mut(&correlation_id)
            .expect("recv_docket verified the ticket is pending");
        entry.retries += 1;
        if entry.retries >= MAX_NEED_PAYLOAD_RETRIES {
            return Err(WatermarkError::ProtocolViolation {
                detail: "judge kept demanding claim bodies that were sent inline".to_string(),
            });
        }
        let inline: Vec<&OwnershipClaim> = if entry.retries >= 2 {
            entry.bodies.values().map(Arc::as_ref).collect()
        } else {
            missing
                .iter()
                .map(|digest| {
                    entry.bodies.get(digest).map(Arc::as_ref).ok_or_else(|| {
                        WatermarkError::ProtocolViolation {
                            detail: format!(
                                "judge demanded body {digest}, which this docket never referenced"
                            ),
                        }
                    })
                })
                .collect::<WatermarkResult<_>>()?
        };
        let refs: Vec<DisputeRef> = entry
            .model_ids
            .iter()
            .zip(&entry.digests)
            .map(|(model_id, digest)| DisputeRef::new(model_id.clone(), *digest))
            .collect();
        Self::encode_with(
            &self.auth,
            &mut self.next_sequence,
            correlation_id,
            &BorrowedResolveDocketRef {
                bodies: &inline,
                disputes: &refs,
            },
        )
    }

    /// Per-tenant accounting rows. An anonymous client of an open judge
    /// sees every tenant (the operator's view); an authenticated client
    /// sees exactly its own row.
    pub fn stats(&mut self) -> WatermarkResult<Vec<TenantStatsEntry>> {
        match self.call(&Request::Stats)? {
            Response::Stats { tenants } => Ok(tenants),
            other => Err(Self::unexpected(other, "Stats")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_core::Signature;
    use wdte_data::SyntheticSpec;
    use wdte_trees::ForestParams;

    /// The borrowed wire mirrors must stay byte-identical to the derived
    /// `Request` encoding: the server decodes the frames as `Request`, so
    /// any divergence here is a silent protocol fork.
    #[test]
    fn borrowed_requests_encode_identically_to_the_owned_enum() {
        let mut rng = SmallRng::seed_from_u64(17);
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2).generate(&mut rng);
        let (trigger, test) = dataset.split_train_test(0.2, &mut rng);
        let model = RandomForest::fit(&dataset, &ForestParams::with_trees(3), &mut rng);
        let claim = OwnershipClaim::new(Signature::random(3, 0.5, &mut rng), trigger, test);
        let digest = PayloadDigest::of_claim(&claim);
        let refs = vec![DisputeRef::new("m", digest), DisputeRef::new("other", digest)];

        let frame = |value: &dyn Serialize| proto::encode_frame(41, value).unwrap();
        assert_eq!(
            frame(&BorrowedRegisterModel {
                model_id: "m",
                model: &model
            }),
            frame(&Request::RegisterModel {
                model_id: "m".into(),
                model: model.clone()
            })
        );
        assert_eq!(
            frame(&BorrowedResolve {
                model_id: "m",
                claim: &claim
            }),
            frame(&Request::Resolve {
                model_id: "m".into(),
                claim: claim.clone()
            })
        );
        assert_eq!(
            frame(&BorrowedResolveDocketRef {
                bodies: &[&claim],
                disputes: &refs
            }),
            frame(&Request::ResolveDocketRef {
                bodies: vec![claim.clone()],
                disputes: refs.clone()
            })
        );
    }
}
