//! # wdte-server
//!
//! Network front-end for the dispute-resolution service: the paper's
//! *judge* as an independently deployable process. A [`JudgeServer`]
//! listens on a TCP socket, speaks the versioned `WDTP` frame protocol
//! of [`wdte_core::proto`], and drives a shared
//! [`DisputeService`](wdte_core::DisputeService); a [`DisputeClient`]
//! gives owners and claimants a typed, pipelined API over the same wire.
//! With a [`wdte_core::KeyRing`] configured, the judge authenticates
//! every frame (HMAC-SHA-256 tag, per-connection replay protection) and
//! scopes models, claims and quotas to the sending tenant.
//!
//! Everything is hand-rolled on `std::net` — the build environment is
//! offline. The server is a readiness-driven event loop: one thread
//! `poll(2)`s the listener and every connection's read side, reassembles
//! frames, and hands each decoded request to the one process-global
//! work-stealing pool (`serve_judge --workers` sizes it;
//! [`ServerConfig::worker_threads`] scopes a per-request width limit over
//! it). Responses are written by the workers as they complete — out of
//! order across a connection's pipelined requests, matched back by
//! correlation id — so an idle connection costs a file descriptor, not a
//! parked thread. Claims and models are content-addressed: bodies travel
//! once, later requests reference them by digest and the judge answers a
//! miss with `NeedPayload`.
//!
//! For horizontal scale, a [`JudgeRouter`] fronts N backend judge
//! processes: it consistent-hashes `(tenant, model id)` keys across the
//! fleet (the [`wdte_core::fleet`] ring), splits dockets into
//! per-backend shards, stitches verdicts back into input order, and
//! degrades a dead backend to bounded retry-on-sibling or typed faults —
//! never a hung connection. Clients speak to the router exactly as to a
//! single judge.
//!
//! ```rust,ignore
//! // Judge process:
//! let service = Arc::new(DisputeService::builder().warm_start_dir("results/models").build()?);
//! let server = JudgeServer::bind("127.0.0.1:7431", service, ServerConfig::default())?;
//! server.serve()?; // blocking event loop
//!
//! // Claimant process: stream dockets without waiting for verdicts.
//! let mut client = DisputeClient::connect("127.0.0.1:7431")?;
//! let tickets: Vec<_> = dockets.iter().map(|d| client.send_docket(d)).collect::<Result<_, _>>()?;
//! for ticket in tickets {
//!     let verdicts = client.recv_docket(ticket)?;
//! }
//! ```

// `deny` rather than `forbid`: the poll(2) FFI module in `server` carries
// the crate's one documented `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod router;
mod server;

pub use client::{ClientAuth, ClientConfig, DisputeClient, DocketOutcome, DocketTicket, PongInfo};
pub use router::{JudgeRouter, RouterConfig, RouterHandle, RunningRouter};
pub use server::{JudgeServer, RunningServer, ServerConfig, ServerHandle};
