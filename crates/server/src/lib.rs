//! # wdte-server
//!
//! Network front-end for the dispute-resolution service: the paper's
//! *judge* as an independently deployable process. A [`JudgeServer`]
//! listens on a TCP socket, speaks the versioned `WDTP` frame protocol of
//! [`wdte_core::proto`], and drives a shared
//! [`DisputeService`](wdte_core::DisputeService); a [`DisputeClient`]
//! gives owners and claimants a typed API over the same wire.
//!
//! Everything is hand-rolled on `std::net` — the build environment is
//! offline, and the blocking, thread-per-connection model is the right
//! shape for the workload: a dispute docket is CPU-bound in tree
//! traversals, which the service fans out across the one process-global
//! work-stealing pool shared by every connection (`serve_judge --workers`
//! sizes it; [`ServerConfig::worker_threads`] scopes a per-request width
//! limit over it), so each connection handler just needs to keep one
//! socket fed.
//!
//! ```rust,ignore
//! // Judge process:
//! let service = Arc::new(DisputeService::builder().warm_start_dir("results/models").build()?);
//! let server = JudgeServer::bind("127.0.0.1:7431", service, ServerConfig::default())?;
//! server.serve()?; // blocking accept loop
//!
//! // Claimant process:
//! let mut client = DisputeClient::connect("127.0.0.1:7431")?;
//! let report = client.resolve("bobs-api", &claim)?;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod server;

pub use client::{ClientConfig, DisputeClient, PongInfo};
pub use server::{JudgeServer, RunningServer, ServerConfig, ServerHandle};
